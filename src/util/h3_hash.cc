#include "util/h3_hash.h"

#include "util/bits.h"
#include "util/log.h"
#include "util/rng.h"

namespace talus {

H3Hash::H3Hash(uint32_t out_bits, uint64_t seed)
    : outBits_(out_bits)
{
    talus_assert(out_bits >= 1 && out_bits <= 32,
                 "H3Hash out_bits must be in [1, 32], got ", out_bits);
    Rng rng(seed);
    for (auto& mask : masks_) {
        // Draw until non-zero so every output bit depends on the input.
        do {
            mask = rng.next64();
        } while (mask == 0);
    }

    // Byte-slice the masks: parity(addr & m) is the XOR over bytes of
    // parity(byte & m_byte), so each byte's contribution to all output
    // bits can be precomputed. bit_contrib[j] collects the output bits
    // whose mask has input bit (8*b + j) set; each table entry is then
    // filled in one XOR from the entry with its lowest set bit cleared.
    for (uint32_t b = 0; b < 8; ++b) {
        uint32_t bit_contrib[8] = {};
        for (uint32_t i = 0; i < outBits_; ++i) {
            const uint64_t mask_byte = (masks_[i] >> (8 * b)) & 0xFF;
            for (uint32_t j = 0; j < 8; ++j) {
                if ((mask_byte >> j) & 1)
                    bit_contrib[j] |= 1u << i;
            }
        }
        table_[b][0] = 0;
        for (uint32_t j = 0; j < 8; ++j) {
            for (uint32_t v = 0; v < (1u << j); ++v)
                table_[b][(1u << j) | v] =
                    table_[b][v] ^ bit_contrib[j];
        }
    }

    hiZero32_ = table_[4][0] ^ table_[5][0] ^ table_[6][0] ^ table_[7][0];
    hiZero16_ = hiZero32_ ^ table_[2][0] ^ table_[3][0];
}

uint32_t
H3Hash::hashReference(Addr addr) const
{
    uint32_t out = 0;
    for (uint32_t bit = 0; bit < outBits_; ++bit) {
        out |= (popcount64(addr & masks_[bit]) & 1) << bit;
    }
    return out;
}

} // namespace talus
