#include "util/h3_hash.h"

#include "util/bits.h"
#include "util/log.h"
#include "util/rng.h"

namespace talus {

H3Hash::H3Hash(uint32_t out_bits, uint64_t seed)
    : outBits_(out_bits)
{
    talus_assert(out_bits >= 1 && out_bits <= 32,
                 "H3Hash out_bits must be in [1, 32], got ", out_bits);
    Rng rng(seed);
    for (auto& mask : masks_) {
        // Draw until non-zero so every output bit depends on the input.
        do {
            mask = rng.next64();
        } while (mask == 0);
    }
}

uint32_t
H3Hash::hash(Addr addr) const
{
    uint32_t out = 0;
    for (uint32_t bit = 0; bit < outBits_; ++bit) {
        out |= (popcount64(addr & masks_[bit]) & 1) << bit;
    }
    return out;
}

double
H3Hash::hashUnit(Addr addr) const
{
    return static_cast<double>(hash(addr)) / static_cast<double>(range());
}

} // namespace talus
