#include "model/analytical_lru.h"

#include <algorithm>
#include <cmath>

#include "util/log.h"

namespace talus {

namespace {

/** Expected resident lines at characteristic time @p t. */
double
expectedOccupancy(const std::vector<double>& probs, double t)
{
    double occ = 0;
    for (double p : probs)
        occ += 1.0 - std::exp(-p * t);
    return occ;
}

} // namespace

std::vector<double>
zipfPopularity(uint64_t n, double alpha)
{
    talus_assert(n >= 1, "popularity needs at least one item");
    talus_assert(alpha >= 0, "zipf alpha must be >= 0");
    std::vector<double> probs(n);
    double sum = 0;
    for (uint64_t r = 0; r < n; ++r) {
        probs[r] = 1.0 / std::pow(static_cast<double>(r + 1), alpha);
        sum += probs[r];
    }
    for (double& p : probs)
        p /= sum;
    return probs;
}

std::vector<double>
uniformPopularity(uint64_t n)
{
    talus_assert(n >= 1, "popularity needs at least one item");
    return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

double
cheCharacteristicTime(const std::vector<double>& probs,
                      double cache_lines)
{
    const double n = static_cast<double>(probs.size());
    talus_assert(cache_lines > 0 && cache_lines < n,
                 "characteristic time needs 0 < c < #items");
    // Occupancy is strictly increasing in T, from 0 to n: bisect.
    // Upper bound by doubling; the loop terminates because occupancy
    // -> n > cache_lines.
    double lo = 0, hi = n;
    while (expectedOccupancy(probs, hi) < cache_lines)
        hi *= 2;
    for (int it = 0; it < 100; ++it) {
        const double mid = 0.5 * (lo + hi);
        if (expectedOccupancy(probs, mid) < cache_lines)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
analyticalLruHitRatio(const std::vector<double>& probs,
                      double cache_lines)
{
    const double n = static_cast<double>(probs.size());
    if (cache_lines <= 0)
        return 0.0;
    if (cache_lines >= n)
        return 1.0; // Everything fits; only cold misses, rate -> 0.
    const double t = cheCharacteristicTime(probs, cache_lines);
    double hit = 0;
    for (double p : probs)
        hit += p * (1.0 - std::exp(-p * t));
    return hit;
}

MissCurve
analyticalLruMissCurve(const std::vector<double>& probs,
                       const std::vector<uint64_t>& sizes)
{
    talus_assert(!sizes.empty(), "curve needs at least one size");
    std::vector<CurvePoint> pts;
    pts.reserve(sizes.size());
    for (uint64_t s : sizes) {
        const double fs = static_cast<double>(s);
        pts.push_back({fs, 1.0 - analyticalLruHitRatio(probs, fs)});
    }
    return MissCurve(std::move(pts));
}

double
maxAbsDeviation(const MissCurve& a, const MissCurve& b, double from,
                double to, uint32_t samples)
{
    talus_assert(samples >= 2, "need at least the two endpoints");
    talus_assert(to >= from, "bad probe range");
    double worst = 0;
    for (uint32_t i = 0; i < samples; ++i) {
        const double s =
            from + (to - from) * i / static_cast<double>(samples - 1);
        worst = std::max(worst, std::abs(a.at(s) - b.at(s)));
    }
    return worst;
}

} // namespace talus
