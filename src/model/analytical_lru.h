/**
 * @file
 * Analytical LRU miss-curve model: a closed-form oracle for the
 * UMON-measured curves on known access distributions.
 *
 * For an independent-reference (IRM) stream — each access drawn IID
 * from a fixed popularity vector p, which is exactly what ZipfStream
 * and UniformRandom produce — a fully associative LRU cache of c
 * lines has a well-known fast analytical model, the characteristic-
 * time ("Che") approximation: item i is resident with probability
 * 1 - exp(-p_i * T(c)), where T(c) is the unique solution of
 *
 *     sum_i (1 - exp(-p_i * T)) = c.
 *
 * The hit ratio is then sum_i p_i * (1 - exp(-p_i * T(c))). The
 * approximation is asymptotically exact for large caches and is, in
 * practice, within a couple of miss-ratio points for everything we
 * generate (cf. PAPERS.md, "A Fast Analytical Model of Fully
 * Associative Caches" — the same spirit: replace simulation with a
 * cheap closed form). For the uniform distribution it degenerates to
 * the exact linear curve miss(c) = 1 - c/W.
 *
 * This is the cross-validation oracle for the scenario zoo: a
 * CombinedUMon snapshot measured on a Zipf or uniform stream must
 * agree with the analytical curve within a stated tolerance (see
 * README "Scenario zoo"), which catches both monitor regressions and
 * generator distribution bugs without a reference simulation.
 */

#ifndef TALUS_MODEL_ANALYTICAL_LRU_H
#define TALUS_MODEL_ANALYTICAL_LRU_H

#include <cstdint>
#include <vector>

#include "core/miss_curve.h"

namespace talus {

/** Zipf(alpha) popularity over @p n items: p_r ∝ 1/(r+1)^alpha. */
std::vector<double> zipfPopularity(uint64_t n, double alpha);

/** Uniform popularity over @p n items: p_i = 1/n. */
std::vector<double> uniformPopularity(uint64_t n);

/**
 * The characteristic time T(c): unique root of
 * sum_i (1 - exp(-p_i T)) = c. @p probs must sum to ~1 with every
 * entry > 0; @p cache_lines must satisfy 0 < c < probs.size().
 */
double cheCharacteristicTime(const std::vector<double>& probs,
                             double cache_lines);

/**
 * Analytical LRU hit ratio of a @p cache_lines-line fully
 * associative cache under IRM popularity @p probs. Returns 0 at
 * c == 0 and 1 for c >= probs.size() (everything fits).
 */
double analyticalLruHitRatio(const std::vector<double>& probs,
                             double cache_lines);

/**
 * Analytical LRU miss-ratio curve sampled at @p sizes (lines):
 * point k is (sizes[k], 1 - hitRatio(sizes[k])). Sizes need not be
 * sorted or distinct — MissCurve canonicalizes.
 */
MissCurve analyticalLruMissCurve(const std::vector<double>& probs,
                                 const std::vector<uint64_t>& sizes);

/**
 * Largest absolute vertical gap between two curves, probed at
 * @p samples evenly spaced sizes in [@p from, @p to] (inclusive).
 * The cross-validation metric: model-vs-UMON agreement is
 * maxAbsDeviation <= tolerance over the monitor's covered range.
 */
double maxAbsDeviation(const MissCurve& a, const MissCurve& b,
                       double from, double to, uint32_t samples = 64);

} // namespace talus

#endif // TALUS_MODEL_ANALYTICAL_LRU_H
