/**
 * @file
 * The synthetic SPEC CPU2006 suite (see DESIGN.md §5).
 *
 * Each AppSpec reproduces the qualitative LRU miss curve the paper
 * reports for that benchmark — cliff positions in paper-MB and MPKI
 * scale — using mixtures of scans, random sets, and Zipf sets. These
 * are the workloads every figure bench draws from; the 18
 * memory-intensive apps form the Fig. 12 mix pool.
 */

#ifndef TALUS_WORKLOAD_SPEC_SUITE_H
#define TALUS_WORKLOAD_SPEC_SUITE_H

#include <string>
#include <vector>

#include "workload/app_spec.h"

namespace talus {

/** All synthetic apps, in a stable order. */
const std::vector<AppSpec>& specSuite();

/** Looks up an app by name; fatal if unknown. */
const AppSpec& findApp(const std::string& name);

/** Names of all apps. */
std::vector<std::string> allAppNames();

/**
 * The 18 most memory-intensive apps (the paper's Fig. 12 pool for
 * random multiprogrammed mixes).
 */
std::vector<std::string> memIntensiveAppNames();

} // namespace talus

#endif // TALUS_WORKLOAD_SPEC_SUITE_H
