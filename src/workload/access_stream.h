/**
 * @file
 * Access-stream generators: the synthetic substitute for SPEC traces.
 *
 * A stream produces an infinite sequence of line addresses. Streams
 * are deterministic given their seed, so every experiment is
 * reproducible and a stream can be replayed (reset) to drive the same
 * "program" through different cache configurations — the synthetic
 * analogue of re-running a SPEC benchmark.
 *
 * Each stream embeds an address-space base in the upper address bits
 * so co-scheduled apps never alias.
 */

#ifndef TALUS_WORKLOAD_ACCESS_STREAM_H
#define TALUS_WORKLOAD_ACCESS_STREAM_H

#include <memory>

#include "util/types.h"

namespace talus {

/** Bit position where per-app address spaces start. */
constexpr uint32_t kAddrSpaceShift = 40;

/** An infinite, deterministic stream of line addresses. */
class AccessStream
{
  public:
    virtual ~AccessStream() = default;

    /** Produces the next line address. */
    virtual Addr next() = 0;

    /**
     * Fills @p out with the next @p n addresses — the same sequence n
     * calls to next() would produce. The default loops over next();
     * hot generators override it so block-driven replay loops pay one
     * virtual dispatch per block instead of one per address.
     */
    virtual void nextBlock(Addr* out, uint64_t n)
    {
        for (uint64_t i = 0; i < n; ++i)
            out[i] = next();
    }

    /** Restarts the stream from its initial state. */
    virtual void reset() = 0;

    /** A fresh, independent copy in its initial state. */
    virtual std::unique_ptr<AccessStream> clone() const = 0;

    /** Generator kind, for diagnostics. */
    virtual const char* kind() const = 0;
};

} // namespace talus

#endif // TALUS_WORKLOAD_ACCESS_STREAM_H
