#include "workload/scenarios.h"

#include "util/bits.h"
#include "util/log.h"
#include "workload/cyclic_scan.h"
#include "workload/mix_stream.h"
#include "workload/zipf_stream.h"

namespace talus {

namespace {

/**
 * Derives child seed @p k from a spec seed. mix64 decorrelates the
 * children; the result is still a pure function of (seed, k), so
 * equal specs build bit-identical streams.
 */
uint64_t
childSeed(uint64_t seed, uint64_t k)
{
    return mix64(seed + 0x9E3779B97F4A7C15ull * (k + 1));
}

/** A fresh Zipf stream for one schedule phase. */
std::unique_ptr<AccessStream>
zipf(uint64_t lines, double alpha, uint32_t addr_space, uint64_t seed)
{
    return std::make_unique<ZipfStream>(lines, alpha, addr_space, seed);
}

} // namespace

std::unique_ptr<PhaseStream>
makeDiurnalStream(const DiurnalSpec& spec)
{
    talus_assert(spec.dayLines >= 1 && spec.nightLines >= 1,
                 "diurnal working sets must be non-empty");
    // Day and night share one address space, so the night set is the
    // hot prefix of the day set — the same popular keys, narrower
    // tail, like real overnight traffic.
    std::vector<PhaseStream::Phase> phases;
    phases.push_back({"day",
                      zipf(spec.dayLines, spec.alpha, spec.addrSpace,
                           childSeed(spec.seed, 0)),
                      spec.phaseAccesses});
    phases.push_back({"night",
                      zipf(spec.nightLines, spec.alpha, spec.addrSpace,
                           childSeed(spec.seed, 1)),
                      spec.phaseAccesses});
    return std::make_unique<PhaseStream>(std::move(phases));
}

std::unique_ptr<PhaseStream>
makeFlashCrowdStream(const FlashCrowdSpec& spec)
{
    talus_assert(spec.crowdFraction > 0 && spec.crowdFraction < 1,
                 "crowd fraction must be in (0, 1)");
    auto base = [&](uint64_t k) {
        return zipf(spec.baseLines, spec.alpha, spec.addrSpace,
                    childSeed(spec.seed, k));
    };
    // The crowd is NEW content (the viral objects did not exist
    // yesterday), so it lives in its own address space. Within the
    // crowd, popularity is itself heavily skewed — one object
    // dominates even the viral set.
    std::vector<MixStream::Component> burst;
    burst.push_back({base(1), 1.0 - spec.crowdFraction});
    burst.push_back({zipf(spec.crowdLines, 1.0, spec.addrSpace + 1,
                          childSeed(spec.seed, 2)),
                     spec.crowdFraction});

    std::vector<PhaseStream::Phase> phases;
    phases.push_back({"quiet", base(0), spec.quietAccesses});
    phases.push_back({"crowd",
                      std::make_unique<MixStream>(
                          std::move(burst), childSeed(spec.seed, 3)),
                      spec.crowdAccesses});
    phases.push_back({"recovery", base(4), spec.quietAccesses});
    return std::make_unique<PhaseStream>(std::move(phases));
}

std::unique_ptr<PhaseStream>
makeScanStormStream(const ScanStormSpec& spec)
{
    talus_assert(spec.scanFraction > 0 && spec.scanFraction < 1,
                 "scan fraction must be in (0, 1)");
    auto base = [&](uint64_t k) {
        return zipf(spec.baseLines, spec.alpha, spec.addrSpace,
                    childSeed(spec.seed, k));
    };
    std::vector<MixStream::Component> storm;
    storm.push_back({base(1), 1.0 - spec.scanFraction});
    storm.push_back(
        {std::make_unique<CyclicScan>(spec.scanLines,
                                      spec.addrSpace + 1),
         spec.scanFraction});

    std::vector<PhaseStream::Phase> phases;
    phases.push_back({"calm", base(0), spec.calmAccesses});
    phases.push_back({"storm",
                      std::make_unique<MixStream>(
                          std::move(storm), childSeed(spec.seed, 2)),
                      spec.stormAccesses});
    phases.push_back({"after", base(3), spec.calmAccesses});
    return std::make_unique<PhaseStream>(std::move(phases));
}

std::unique_ptr<PhaseStream>
makeTenantChurnStream(const TenantChurnSpec& spec)
{
    // Tenant t's private key space and per-phase stream. Each roster
    // phase gets fresh child streams (seeded per phase) mixed evenly;
    // a tenant's *popularity distribution* persists across phases
    // because it is a property of (lines, alpha, addr space), which
    // is what cache contents care about.
    auto tenant = [&](uint32_t t, uint64_t k) {
        return zipf(spec.tenantLines, spec.alpha, spec.addrSpace + t,
                    childSeed(spec.seed, 16 * k + t));
    };
    auto roster = [&](std::vector<uint32_t> tenants, uint64_t k) {
        std::vector<MixStream::Component> parts;
        for (uint32_t t : tenants)
            parts.push_back({tenant(t, k), 1.0});
        return std::make_unique<MixStream>(std::move(parts),
                                           childSeed(spec.seed, 64 + k));
    };

    std::vector<PhaseStream::Phase> phases;
    phases.push_back({"tenants-AB", roster({0, 1}, 0),
                      spec.phaseAccesses});
    phases.push_back({"arrive-C", roster({0, 1, 2}, 1),
                      spec.phaseAccesses});
    phases.push_back({"depart-A", roster({1, 2}, 2),
                      spec.phaseAccesses});
    return std::make_unique<PhaseStream>(std::move(phases));
}

} // namespace talus
