#include "workload/mix_stream.h"

#include <algorithm>

#include "util/log.h"

namespace talus {

MixStream::MixStream(std::vector<Component> components, uint64_t seed)
    : components_(std::move(components)), seed_(seed), rng_(seed)
{
    talus_assert(!components_.empty(), "mixture needs components");
    double sum = 0;
    for (const Component& c : components_) {
        talus_assert(c.stream != nullptr, "null component stream");
        talus_assert(c.weight > 0, "component weights must be > 0");
        sum += c.weight;
    }
    cdf_.reserve(components_.size());
    double acc = 0;
    for (const Component& c : components_) {
        acc += c.weight / sum;
        cdf_.push_back(acc);
    }
    cdf_.back() = 1.0; // Guard against rounding.
}

Addr
MixStream::next()
{
    const double u = rng_.unit();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const size_t idx = static_cast<size_t>(it - cdf_.begin());
    return components_[idx].stream->next();
}

void
MixStream::reset()
{
    rng_.seed(seed_);
    for (Component& c : components_)
        c.stream->reset();
}

std::unique_ptr<AccessStream>
MixStream::clone() const
{
    std::vector<Component> copies;
    copies.reserve(components_.size());
    for (const Component& c : components_)
        copies.push_back({c.stream->clone(), c.weight});
    return std::make_unique<MixStream>(std::move(copies), seed_);
}

} // namespace talus
