/**
 * @file
 * The scenario zoo: phase-change workload generators for the traffic
 * patterns that create and move cache-performance cliffs in
 * production serving systems.
 *
 * Each factory composes the existing generators (Zipf, uniform, scan,
 * mix) on a PhaseStream schedule and is fully deterministic given its
 * spec's seed — child seeds are derived from it, so two streams built
 * from equal specs are bit-identical. All footprints are in cache
 * lines; address spaces separate "who" owns the keys (tenants, the
 * viral object set, the scanner) so working sets interact only
 * through cache pressure, exactly like distinct key spaces behind one
 * cache tier.
 *
 * The catalog:
 *
 *  - Diurnal shift: traffic alternates between a broad daytime
 *    working set and a narrow nighttime one. The miss curve's knee
 *    moves twice a cycle; a statically-provisioned cache sits on the
 *    wrong side of a cliff half the time.
 *
 *  - Flash crowd: a small set of viral keys abruptly takes over most
 *    of the traffic, then decays. Models the cliff *appearing* under
 *    a previously comfortable cache.
 *
 *  - Scan storm: a sequential scan (batch job, crawler, table scan)
 *    runs over a Zipf base. Scans are LRU's pathological case — the
 *    cliff scenario of the paper's Fig. 1 — arriving and leaving.
 *
 *  - Tenant churn: tenants with private key spaces arrive and
 *    depart, shifting both total pressure and its composition.
 */

#ifndef TALUS_WORKLOAD_SCENARIOS_H
#define TALUS_WORKLOAD_SCENARIOS_H

#include <memory>

#include "workload/phase_stream.h"

namespace talus {

/** Daytime-broad / nighttime-narrow alternation. */
struct DiurnalSpec
{
    uint64_t dayLines = 1 << 14;   //!< Daytime working set.
    uint64_t nightLines = 1 << 11; //!< Nighttime working set.
    double alpha = 0.9;            //!< Zipf skew of both.
    uint64_t phaseAccesses = 400'000; //!< Length of each half-cycle.
    uint32_t addrSpace = 0;
    uint64_t seed = 0xD1DA;
};

/** Quiet Zipf traffic, then a viral burst, then quiet again. */
struct FlashCrowdSpec
{
    uint64_t baseLines = 1 << 14;  //!< Steady-state working set.
    double alpha = 0.9;            //!< Skew of the base traffic.
    uint64_t crowdLines = 1 << 7;  //!< The viral object set (small).
    double crowdFraction = 0.8;    //!< Traffic share of the crowd.
    uint64_t quietAccesses = 400'000; //!< Before (and after) the burst.
    uint64_t crowdAccesses = 200'000; //!< Burst length.
    uint32_t addrSpace = 0; //!< Base keys; the crowd uses addrSpace+1.
    uint64_t seed = 0xF1A5;
};

/** Zipf base with a periodic sequential-scan storm. */
struct ScanStormSpec
{
    uint64_t baseLines = 1 << 12;  //!< Zipf working set.
    double alpha = 0.9;            //!< Skew of the base traffic.
    uint64_t scanLines = 1 << 13;  //!< Lines the storm sweeps.
    double scanFraction = 0.5;     //!< Traffic share of the scan
                                   //!< during the storm.
    uint64_t calmAccesses = 400'000;  //!< Between storms.
    uint64_t stormAccesses = 200'000; //!< Storm length.
    uint32_t addrSpace = 0; //!< Base keys; the scan uses addrSpace+1.
    uint64_t seed = 0x5C4A;
};

/** Tenants with private key spaces arriving and departing. */
struct TenantChurnSpec
{
    uint64_t tenantLines = 1 << 12; //!< Working set per tenant.
    double alpha = 0.9;             //!< Skew per tenant.
    uint64_t phaseAccesses = 300'000; //!< Length of each roster phase.
    uint32_t addrSpace = 0; //!< Tenant t uses addrSpace + t.
    uint64_t seed = 0x7E4A;
};

/** Phase schedule: day -> night -> (cycle). */
std::unique_ptr<PhaseStream> makeDiurnalStream(const DiurnalSpec& spec);

/** Phase schedule: quiet -> crowd -> quiet -> (cycle). */
std::unique_ptr<PhaseStream>
makeFlashCrowdStream(const FlashCrowdSpec& spec);

/** Phase schedule: calm -> storm -> calm -> (cycle). */
std::unique_ptr<PhaseStream>
makeScanStormStream(const ScanStormSpec& spec);

/**
 * Phase schedule over three tenants A, B, C:
 * {A,B} -> {A,B,C} (C arrives) -> {B,C} (A departs) -> (cycle).
 * Resident tenants split traffic evenly.
 */
std::unique_ptr<PhaseStream>
makeTenantChurnStream(const TenantChurnSpec& spec);

} // namespace talus

#endif // TALUS_WORKLOAD_SCENARIOS_H
