/**
 * @file
 * Private-cache filtering, as a stream transformer.
 *
 * The paper's LLC access streams are what remains after the private
 * L1/L2 absorb the temporal locality (Table I: 128KB private L2) —
 * that filtering is what makes Assumption 3 (sampled streams are
 * self-similar) hold: no single line dominates LLC accesses because
 * hot lines live in the L2.
 *
 * FilteredStream models exactly that: it owns a small private LRU
 * cache and forwards only the inner stream's misses. The synthetic
 * suite already bakes filtering into its APKI numbers, so this class
 * is used for validation (tests and the ablation_l2_filter bench)
 * rather than by default.
 */

#ifndef TALUS_WORKLOAD_FILTERED_STREAM_H
#define TALUS_WORKLOAD_FILTERED_STREAM_H

#include "cache/set_assoc_cache.h"
#include "workload/access_stream.h"

namespace talus {

/** Forwards only the accesses that miss in a private cache. */
class FilteredStream : public AccessStream
{
  public:
    /**
     * @param inner Demand stream (owned).
     * @param filter_lines Private cache capacity in lines.
     * @param filter_ways Private cache associativity.
     */
    FilteredStream(std::unique_ptr<AccessStream> inner,
                   uint64_t filter_lines, uint32_t filter_ways = 8);

    Addr next() override;
    void reset() override;
    std::unique_ptr<AccessStream> clone() const override;
    const char* kind() const override { return "filtered"; }

    /** Fraction of inner accesses that passed the filter so far. */
    double passRatio() const;

  private:
    static SetAssocCache::Config filterConfig(uint64_t lines,
                                              uint32_t ways);

    std::unique_ptr<AccessStream> inner_;
    uint64_t filterLines_;
    uint32_t filterWays_;
    SetAssocCache filter_;
    uint64_t innerAccesses_ = 0;
    uint64_t passed_ = 0;
};

} // namespace talus

#endif // TALUS_WORKLOAD_FILTERED_STREAM_H
