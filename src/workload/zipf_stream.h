/**
 * @file
 * Zipf-distributed accesses: rank r is accessed with probability
 * proportional to 1 / r^alpha. Produces the convex, diminishing-
 * returns miss curves typical of pointer-chasing SPEC benchmarks
 * (soplex, sphinx3, astar, ...).
 */

#ifndef TALUS_WORKLOAD_ZIPF_STREAM_H
#define TALUS_WORKLOAD_ZIPF_STREAM_H

#include <vector>

#include "util/rng.h"
#include "workload/access_stream.h"

namespace talus {

/** Zipf(alpha) accesses over a fixed working set. */
class ZipfStream : public AccessStream
{
  public:
    /**
     * @param num_lines Working-set size in lines.
     * @param alpha Skew parameter (0 = uniform; ~0.8 typical).
     * @param addr_space Per-app address-space id.
     * @param seed RNG seed.
     */
    ZipfStream(uint64_t num_lines, double alpha, uint32_t addr_space = 0,
               uint64_t seed = 0x21FF);

    Addr next() override;
    void nextBlock(Addr* out, uint64_t n) override;
    void reset() override { rng_.seed(seed_); }
    std::unique_ptr<AccessStream> clone() const override;
    const char* kind() const override { return "zipf"; }

  private:
    uint64_t numLines_;
    double alpha_;
    Addr base_;
    uint64_t seed_;
    Rng rng_;
    std::vector<double> cdf_; //!< Cumulative rank probabilities.
};

} // namespace talus

#endif // TALUS_WORKLOAD_ZIPF_STREAM_H
