/**
 * @file
 * Application specifications: named synthetic stand-ins for the SPEC
 * CPU2006 benchmarks the paper evaluates.
 *
 * An AppSpec bundles (i) an access-pattern recipe whose LRU miss
 * curve reproduces the benchmark's documented shape (cliff positions
 * in paper-MB, MPKI scale), and (ii) the core-model parameters (APKI,
 * base CPI, memory-level parallelism) used to turn miss rates into
 * IPC. DESIGN.md §5 records the mapping for every benchmark.
 */

#ifndef TALUS_WORKLOAD_APP_SPEC_H
#define TALUS_WORKLOAD_APP_SPEC_H

#include <memory>
#include <string>
#include <vector>

#include "workload/access_stream.h"

namespace talus {

/** Recipe + core parameters for one synthetic application. */
struct AppSpec
{
    /** One access-pattern component. */
    struct Component
    {
        enum class Kind
        {
            Scan,   //!< Cyclic sequential scan (cliff under LRU).
            Random, //!< Uniform random working set (linear ramp).
            Zipf,   //!< Zipf working set (convex tail).
        };
        Kind kind;
        double mb;      //!< Working-set size in paper-MB.
        double weight;  //!< Share of this app's accesses.
        double zipfAlpha = 0.8; //!< Skew, for Kind::Zipf.
    };

    std::string name;   //!< Benchmark name (e.g. "libquantum").
    double apki;        //!< LLC accesses per kilo-instruction.
    double cpiBase;     //!< CPI excluding LLC/memory stalls.
    double mlp;         //!< Overlap factor dividing memory latency.
    std::vector<Component> components;

    /**
     * Builds the app's access stream.
     *
     * @param lines_per_mb Scale: lines per paper-MB (sim::Scale).
     * @param addr_space Per-app address-space id for co-runs.
     * @param seed RNG seed.
     */
    std::unique_ptr<AccessStream>
    buildStream(uint64_t lines_per_mb, uint32_t addr_space = 0,
                uint64_t seed = 0xA55) const;

    /** Largest component working set, in paper-MB. */
    double footprintMb() const;

    /** Instructions represented by one LLC access (1000 / APKI). */
    double instrPerAccess() const { return 1000.0 / apki; }
};

} // namespace talus

#endif // TALUS_WORKLOAD_APP_SPEC_H
