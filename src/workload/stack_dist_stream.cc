#include "workload/stack_dist_stream.h"

#include <algorithm>

#include "util/log.h"

namespace talus {

StackDistStream::StackDistStream(std::vector<Bucket> profile,
                                 double cold_weight, uint32_t addr_space,
                                 uint64_t seed)
    : profile_(std::move(profile)), coldWeight_(cold_weight),
      base_(static_cast<Addr>(addr_space) << kAddrSpaceShift), seed_(seed),
      rng_(seed)
{
    talus_assert(coldWeight_ >= 0, "cold weight must be >= 0");
    double sum = coldWeight_;
    for (const Bucket& b : profile_) {
        talus_assert(b.weight >= 0, "bucket weight must be >= 0");
        sum += b.weight;
    }
    talus_assert(sum > 0, "profile has no mass");

    // CDF over profile buckets; the tail (u >= last) is cold.
    cdf_.reserve(profile_.size());
    double acc = 0;
    for (const Bucket& b : profile_) {
        acc += b.weight / sum;
        cdf_.push_back(acc);
    }
}

Addr
StackDistStream::next()
{
    const double u = rng_.unit();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);

    uint64_t target = ~0ull; // Cold by default.
    if (it != cdf_.end())
        target = profile_[static_cast<size_t>(it - cdf_.begin())].distance;

    Addr addr;
    if (target != ~0ull && target < stack_.size()) {
        // Reuse the line at the requested stack depth.
        addr = stack_[target];
        stack_.erase(stack_.begin() +
                     static_cast<std::ptrdiff_t>(target));
    } else {
        // Cold access (or deeper than the current stack): new address.
        addr = base_ + nextCold_++;
    }
    stack_.insert(stack_.begin(), addr);
    // Cap stack growth: beyond the deepest profiled distance nothing
    // is ever reused, so the tail can be dropped.
    uint64_t max_depth = 0;
    for (const Bucket& b : profile_)
        max_depth = std::max(max_depth, b.distance + 1);
    if (stack_.size() > max_depth + 1)
        stack_.pop_back();
    return addr;
}

void
StackDistStream::reset()
{
    rng_.seed(seed_);
    stack_.clear();
    nextCold_ = 0;
}

std::unique_ptr<AccessStream>
StackDistStream::clone() const
{
    return std::make_unique<StackDistStream>(
        profile_, coldWeight_,
        static_cast<uint32_t>(base_ >> kAddrSpaceShift), seed_);
}

} // namespace talus
