#include "workload/app_spec.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"
#include "util/log.h"
#include "workload/cyclic_scan.h"
#include "workload/mix_stream.h"
#include "workload/uniform_random.h"
#include "workload/zipf_stream.h"

namespace talus {

std::unique_ptr<AccessStream>
AppSpec::buildStream(uint64_t lines_per_mb, uint32_t addr_space,
                     uint64_t seed) const
{
    talus_assert(!components.empty(), "app ", name, " has no components");
    talus_assert(lines_per_mb >= 1, "lines_per_mb must be >= 1");

    std::vector<MixStream::Component> mix;
    mix.reserve(components.size());
    uint64_t salt = 1;
    for (const Component& c : components) {
        const uint64_t lines = std::max<uint64_t>(
            1, static_cast<uint64_t>(std::llround(c.mb * lines_per_mb)));
        const uint64_t comp_seed = mix64(seed ^ (salt * 0x1234567));
        // Components get disjoint sub-spaces of the app's address
        // space so a scan never aliases a random/zipf working set.
        const uint32_t comp_space =
            addr_space * 64 + static_cast<uint32_t>(salt);
        std::unique_ptr<AccessStream> stream;
        switch (c.kind) {
          case Component::Kind::Scan:
            stream = std::make_unique<CyclicScan>(lines, comp_space);
            break;
          case Component::Kind::Random:
            stream = std::make_unique<UniformRandom>(lines, comp_space,
                                                     comp_seed);
            break;
          case Component::Kind::Zipf:
            stream = std::make_unique<ZipfStream>(lines, c.zipfAlpha,
                                                  comp_space, comp_seed);
            break;
        }
        mix.push_back({std::move(stream), c.weight});
        salt++;
    }

    if (mix.size() == 1)
        return std::move(mix.front().stream);
    return std::make_unique<MixStream>(std::move(mix),
                                       mix64(seed ^ 0xFEED));
}

double
AppSpec::footprintMb() const
{
    double mb = 0;
    for (const Component& c : components)
        mb = std::max(mb, c.mb);
    return mb;
}

} // namespace talus
