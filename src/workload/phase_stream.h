/**
 * @file
 * PhaseStream: time-composed workloads — the transitions where cache
 * cliffs actually bite.
 *
 * Every other generator in this directory is statically parameterized:
 * its distribution never changes, so it can only show a cliff that is
 * already there. Production traffic is not like that — flash crowds,
 * scan storms, diurnal load shifts, and tenant churn *move* the miss
 * curve under the cache, and Talus's pitch is holding performance
 * flat through exactly those transitions. PhaseStream models them by
 * composing child streams on a deterministic access-count schedule:
 * phase i serves its child for `accesses` accesses, then the next
 * phase takes over; after the last phase the schedule cycles.
 *
 * Child streams are NOT reset between laps of the schedule — a
 * returning phase continues its child where it left off, the way a
 * diurnal workload resumes the same popularity distribution each
 * morning. reset() restarts the schedule and every child, so the
 * whole composition is replayable; determinism is inherited from the
 * children (the schedule itself is pure counting, no randomness).
 *
 * Scenario factories for the standard transitions live in
 * workload/scenarios.h.
 */

#ifndef TALUS_WORKLOAD_PHASE_STREAM_H
#define TALUS_WORKLOAD_PHASE_STREAM_H

#include <string>
#include <vector>

#include "workload/access_stream.h"

namespace talus {

/** Cycles through child streams on an access-count schedule. */
class PhaseStream : public AccessStream
{
  public:
    /** One schedule entry. */
    struct Phase
    {
        std::string label; //!< Name for reports ("calm", "storm", ...).
        std::unique_ptr<AccessStream> stream;
        uint64_t accesses; //!< Length of the phase (>= 1).
    };

    /** @param phases The schedule, in order (>= 1 phase). */
    explicit PhaseStream(std::vector<Phase> phases);

    Addr next() override;
    void nextBlock(Addr* out, uint64_t n) override;
    void reset() override;
    std::unique_ptr<AccessStream> clone() const override;
    const char* kind() const override { return "phase"; }

    /** Phases in the schedule. */
    uint32_t numPhases() const
    {
        return static_cast<uint32_t>(phases_.size());
    }

    /** Label of phase @p i. */
    const std::string& phaseLabel(uint32_t i) const
    {
        return phases_[i].label;
    }

    /** Length of phase @p i, in accesses. */
    uint64_t phaseAccesses(uint32_t i) const
    {
        return phases_[i].accesses;
    }

    /** Accesses in one full lap of the schedule. */
    uint64_t scheduleAccesses() const { return scheduleLen_; }

    /** Index of the phase the next access will come from. */
    uint32_t currentPhase() const;

    /** Index of the phase access number @p n (0-based) falls in. */
    uint32_t phaseAt(uint64_t n) const;

  private:
    std::vector<Phase> phases_;
    uint64_t scheduleLen_ = 0;
    uint32_t cur_ = 0;        //!< Phase serving the next access.
    uint64_t posInPhase_ = 0; //!< Accesses already served by cur_.
};

} // namespace talus

#endif // TALUS_WORKLOAD_PHASE_STREAM_H
