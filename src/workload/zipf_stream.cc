#include "workload/zipf_stream.h"

#include <algorithm>
#include <cmath>

#include "util/bits.h"
#include "util/log.h"

namespace talus {

ZipfStream::ZipfStream(uint64_t num_lines, double alpha, uint32_t addr_space,
                       uint64_t seed)
    : numLines_(num_lines), alpha_(alpha),
      base_(static_cast<Addr>(addr_space) << kAddrSpaceShift), seed_(seed),
      rng_(seed)
{
    talus_assert(num_lines >= 1, "zipf stream needs a working set");
    talus_assert(alpha >= 0, "zipf alpha must be >= 0");
    cdf_.resize(numLines_);
    double sum = 0;
    for (uint64_t r = 0; r < numLines_; ++r) {
        sum += 1.0 / std::pow(static_cast<double>(r + 1), alpha_);
        cdf_[r] = sum;
    }
    for (auto& c : cdf_)
        c /= sum;
}

Addr
ZipfStream::next()
{
    const double u = rng_.unit();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    const uint64_t rank = static_cast<uint64_t>(it - cdf_.begin());
    // Scramble ranks so popularity is not correlated with adjacency
    // (hot lines spread across sets). XOR with a per-stream constant
    // is an exact bijection for power-of-two working sets; otherwise
    // the identity is used — the cache's hashed set indexing already
    // decorrelates placement.
    if ((numLines_ & (numLines_ - 1)) == 0)
        return base_ + (rank ^ (mix64(seed_) & (numLines_ - 1)));
    return base_ + rank;
}

void
ZipfStream::nextBlock(Addr* out, uint64_t n)
{
    const bool pow2 = (numLines_ & (numLines_ - 1)) == 0;
    const uint64_t scramble =
        pow2 ? (mix64(seed_) & (numLines_ - 1)) : 0;
    for (uint64_t i = 0; i < n; ++i) {
        const double u = rng_.unit();
        const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
        const uint64_t rank = static_cast<uint64_t>(it - cdf_.begin());
        out[i] = base_ + (rank ^ scramble);
    }
}

std::unique_ptr<AccessStream>
ZipfStream::clone() const
{
    return std::make_unique<ZipfStream>(
        numLines_, alpha_, static_cast<uint32_t>(base_ >> kAddrSpaceShift),
        seed_);
}

} // namespace talus
