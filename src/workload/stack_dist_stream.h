/**
 * @file
 * Stack-distance-profile generator: produces an access stream whose
 * LRU stack-distance distribution matches a given profile. Since an
 * LRU miss curve is exactly the complementary CDF of that profile,
 * this generator can synthesize a stream for (almost) any target LRU
 * miss curve — the most direct way to substitute a SPEC trace whose
 * published miss curve is known.
 */

#ifndef TALUS_WORKLOAD_STACK_DIST_STREAM_H
#define TALUS_WORKLOAD_STACK_DIST_STREAM_H

#include <vector>

#include "util/rng.h"
#include "workload/access_stream.h"

namespace talus {

/** Generates accesses matching a target stack-distance profile. */
class StackDistStream : public AccessStream
{
  public:
    /** One bucket of the target profile. */
    struct Bucket
    {
        uint64_t distance; //!< LRU stack distance (lines).
        double weight;     //!< Relative access frequency.
    };

    /**
     * @param profile Distance buckets; an extra implicit bucket of
     *        weight @p cold_weight generates compulsory misses (new
     *        addresses).
     * @param cold_weight Relative frequency of cold accesses.
     * @param addr_space Per-app address-space id.
     * @param seed RNG seed.
     */
    StackDistStream(std::vector<Bucket> profile, double cold_weight,
                    uint32_t addr_space = 0, uint64_t seed = 0x57AC);

    Addr next() override;
    void reset() override;
    std::unique_ptr<AccessStream> clone() const override;
    const char* kind() const override { return "stackdist"; }

  private:
    std::vector<Bucket> profile_;
    double coldWeight_;
    Addr base_;
    uint64_t seed_;
    Rng rng_;
    std::vector<double> cdf_;
    std::vector<Addr> stack_; //!< Front = MRU.
    Addr nextCold_ = 0;
};

} // namespace talus

#endif // TALUS_WORKLOAD_STACK_DIST_STREAM_H
