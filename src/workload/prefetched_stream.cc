#include "workload/prefetched_stream.h"

#include "util/log.h"

namespace talus {

PrefetchedStream::PrefetchedStream(std::unique_ptr<AccessStream> inner)
    : PrefetchedStream(std::move(inner), Config{})
{
}

PrefetchedStream::PrefetchedStream(std::unique_ptr<AccessStream> inner,
                                   const Config& config)
    : inner_(std::move(inner)), cfg_(config),
      table_(config.streamTableSize)
{
    talus_assert(inner_ != nullptr, "prefetcher needs a demand stream");
    talus_assert(cfg_.streamTableSize >= 1, "stream table size >= 1");
    talus_assert(cfg_.degree >= 1, "prefetch degree >= 1");
}

void
PrefetchedStream::observe(Addr addr)
{
    // Find a stream this access continues (previous address one line
    // behind), or allocate a table entry round-robin by address.
    for (StreamEntry& e : table_) {
        if (e.valid && addr == e.lastAddr + 1) {
            e.lastAddr = addr;
            if (e.hits < cfg_.trainThreshold) {
                e.hits++;
            }
            if (e.hits >= cfg_.trainThreshold) {
                for (uint32_t d = 1; d <= cfg_.degree; ++d)
                    pending_.push_back(addr + d);
                issued_ += cfg_.degree;
                e.lastAddr = addr + cfg_.degree;
            }
            return;
        }
    }
    StreamEntry& slot =
        table_[static_cast<size_t>(addr) % table_.size()];
    slot.valid = true;
    slot.lastAddr = addr;
    slot.hits = 0;
}

Addr
PrefetchedStream::next()
{
    if (!pending_.empty()) {
        const Addr addr = pending_.front();
        pending_.pop_front();
        return addr;
    }
    const Addr addr = inner_->next();
    observe(addr);
    return addr;
}

void
PrefetchedStream::reset()
{
    inner_->reset();
    table_.assign(cfg_.streamTableSize, StreamEntry{});
    pending_.clear();
    issued_ = 0;
}

std::unique_ptr<AccessStream>
PrefetchedStream::clone() const
{
    return std::make_unique<PrefetchedStream>(inner_->clone(), cfg_);
}

} // namespace talus
