/**
 * @file
 * Uniform random accesses over a fixed working set. Under LRU this
 * yields a nearly linear miss curve (hit rate ~ s/W below the working
 * set size) — the "milc-like", partitioning-insensitive shape.
 */

#ifndef TALUS_WORKLOAD_UNIFORM_RANDOM_H
#define TALUS_WORKLOAD_UNIFORM_RANDOM_H

#include "util/rng.h"
#include "workload/access_stream.h"

namespace talus {

/** Uniform random accesses over @p num_lines lines. */
class UniformRandom : public AccessStream
{
  public:
    /**
     * @param num_lines Working-set size in lines.
     * @param addr_space Per-app address-space id.
     * @param seed RNG seed.
     */
    UniformRandom(uint64_t num_lines, uint32_t addr_space = 0,
                  uint64_t seed = 0x11A2);

    Addr next() override;
    void nextBlock(Addr* out, uint64_t n) override;
    void reset() override { rng_.seed(seed_); }
    std::unique_ptr<AccessStream> clone() const override;
    const char* kind() const override { return "random"; }

  private:
    uint64_t numLines_;
    Addr base_;
    uint64_t seed_;
    Rng rng_;
};

} // namespace talus

#endif // TALUS_WORKLOAD_UNIFORM_RANDOM_H
