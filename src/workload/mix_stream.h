/**
 * @file
 * Probabilistic mixture of child streams. Each access is drawn from
 * one child with fixed probability. Mixtures of scans (cliffs) and
 * Zipf/random sets (convex tails) reproduce the qualitative miss
 * curves of the SPEC benchmarks the paper evaluates — e.g., the
 * Sec. III example app is Mix{random 2MB, scan 3MB}.
 */

#ifndef TALUS_WORKLOAD_MIX_STREAM_H
#define TALUS_WORKLOAD_MIX_STREAM_H

#include <vector>

#include "util/rng.h"
#include "workload/access_stream.h"

namespace talus {

/** Weighted mixture of access streams. */
class MixStream : public AccessStream
{
  public:
    /** One mixture component. */
    struct Component
    {
        std::unique_ptr<AccessStream> stream;
        double weight; //!< Relative access frequency.
    };

    /**
     * @param components Child streams with weights (> 0 overall).
     * @param seed RNG seed for component selection.
     */
    MixStream(std::vector<Component> components, uint64_t seed = 0x313);

    Addr next() override;
    void reset() override;
    std::unique_ptr<AccessStream> clone() const override;
    const char* kind() const override { return "mix"; }

  private:
    std::vector<Component> components_;
    uint64_t seed_;
    Rng rng_;
    std::vector<double> cdf_;
};

} // namespace talus

#endif // TALUS_WORKLOAD_MIX_STREAM_H
