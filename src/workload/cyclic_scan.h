/**
 * @file
 * Cyclic sequential scan: the canonical cliff generator.
 *
 * Repeatedly sweeping W lines gives LRU a 0% hit rate below W lines
 * of cache and ~100% at W — the libquantum behaviour of Fig. 1. Under
 * MIN or with Talus, the same stream yields a smooth diagonal.
 */

#ifndef TALUS_WORKLOAD_CYCLIC_SCAN_H
#define TALUS_WORKLOAD_CYCLIC_SCAN_H

#include "workload/access_stream.h"

namespace talus {

/** Cyclic scan over a fixed working set. */
class CyclicScan : public AccessStream
{
  public:
    /**
     * @param num_lines Working-set size in lines.
     * @param addr_space Per-app address-space id (upper bits).
     * @param stride Line stride between consecutive accesses.
     */
    CyclicScan(uint64_t num_lines, uint32_t addr_space = 0,
               uint64_t stride = 1);

    Addr next() override;
    void reset() override { pos_ = 0; }
    std::unique_ptr<AccessStream> clone() const override;
    const char* kind() const override { return "scan"; }

  private:
    uint64_t numLines_;
    uint64_t stride_;
    Addr base_;
    uint64_t pos_ = 0;
};

} // namespace talus

#endif // TALUS_WORKLOAD_CYCLIC_SCAN_H
