#include "workload/uniform_random.h"

#include "util/log.h"

namespace talus {

UniformRandom::UniformRandom(uint64_t num_lines, uint32_t addr_space,
                             uint64_t seed)
    : numLines_(num_lines),
      base_(static_cast<Addr>(addr_space) << kAddrSpaceShift), seed_(seed),
      rng_(seed)
{
    talus_assert(num_lines >= 1, "random stream needs a working set");
}

Addr
UniformRandom::next()
{
    return base_ + rng_.below(numLines_);
}

void
UniformRandom::nextBlock(Addr* out, uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        out[i] = base_ + rng_.below(numLines_);
}

std::unique_ptr<AccessStream>
UniformRandom::clone() const
{
    return std::make_unique<UniformRandom>(
        numLines_, static_cast<uint32_t>(base_ >> kAddrSpaceShift), seed_);
}

} // namespace talus
