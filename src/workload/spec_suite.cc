#include "workload/spec_suite.h"

#include "util/log.h"

namespace talus {

namespace {

using Kind = AppSpec::Component::Kind;

/** Builds the suite once; see DESIGN.md §5 for the shape rationale. */
std::vector<AppSpec>
buildSuite()
{
    std::vector<AppSpec> apps;

    // libquantum: pure 32MB stream, the paper's flagship cliff (Fig. 1).
    apps.push_back({"libquantum", 33, 0.7, 4.0,
                    {{Kind::Scan, 32.0, 1.0, 0.0}}});

    // omnetpp: cliff at 2MB (Fig. 13b) with a convex tail.
    apps.push_back({"omnetpp", 30, 0.8, 1.5,
                    {{Kind::Scan, 2.0, 0.6, 0.0},
                     {Kind::Zipf, 8.0, 0.4, 0.7}}});

    // xalancbmk: convex start, cliff at 6MB (Fig. 10f, 13c).
    apps.push_back({"xalancbmk", 30, 0.8, 2.0,
                    {{Kind::Zipf, 1.0, 0.35, 1.0},
                     {Kind::Scan, 6.0, 0.65, 0.0}}});

    // mcf: high MPKI, broad mostly-convex curve with a step ~10MB.
    apps.push_back({"mcf", 40, 1.0, 2.0,
                    {{Kind::Zipf, 8.0, 0.5, 0.6},
                     {Kind::Random, 4.0, 0.2, 0.0},
                     {Kind::Scan, 10.0, 0.3, 0.0}}});

    // perlbench: low MPKI, convex region then a small cliff (Fig. 10a).
    apps.push_back({"perlbench", 8, 0.6, 1.5,
                    {{Kind::Zipf, 0.5, 0.5, 1.1},
                     {Kind::Scan, 1.5, 0.5, 0.0}}});

    // cactusADM: convex region then cliff (Fig. 10c).
    apps.push_back({"cactusADM", 12, 0.9, 2.0,
                    {{Kind::Zipf, 2.0, 0.45, 0.9},
                     {Kind::Scan, 9.0, 0.55, 0.0}}});

    // lbm: streaming, high MPKI, cliff ~5MB (Fig. 10e).
    apps.push_back({"lbm", 35, 0.8, 3.0,
                    {{Kind::Scan, 5.0, 0.85, 0.0},
                     {Kind::Random, 1.0, 0.15, 0.0}}});

    // GemsFDTD: lbm-like (Sec. VII-C).
    apps.push_back({"GemsFDTD", 25, 0.9, 2.5,
                    {{Kind::Scan, 8.0, 0.8, 0.0},
                     {Kind::Random, 1.0, 0.2, 0.0}}});

    // gobmk: low MPKI, smooth (Fig. 8b).
    apps.push_back({"gobmk", 5, 0.6, 1.2,
                    {{Kind::Zipf, 4.0, 0.9, 1.2},
                     {Kind::Scan, 1.0, 0.1, 0.0}}});

    // sphinx3: convex, mid MPKI.
    apps.push_back({"sphinx3", 20, 0.7, 2.0,
                    {{Kind::Zipf, 8.0, 0.8, 0.8},
                     {Kind::Scan, 2.0, 0.2, 0.0}}});

    // soplex: convex.
    apps.push_back({"soplex", 25, 0.9, 2.0,
                    {{Kind::Zipf, 8.0, 1.0, 0.75}}});

    // milc: thrash-y, nearly size-insensitive below 16MB.
    apps.push_back({"milc", 25, 0.8, 2.5,
                    {{Kind::Random, 16.0, 1.0, 0.0}}});

    // bwaves: long stream.
    apps.push_back({"bwaves", 20, 0.7, 3.0,
                    {{Kind::Scan, 24.0, 1.0, 0.0}}});

    // astar: small working set.
    apps.push_back({"astar", 15, 0.8, 1.3,
                    {{Kind::Zipf, 2.0, 1.0, 0.9}}});

    // h264ref: small working set, low MPKI.
    apps.push_back({"h264ref", 10, 0.5, 1.5,
                    {{Kind::Zipf, 0.5, 1.0, 1.0}}});

    // gcc: small cliff at 3MB.
    apps.push_back({"gcc", 18, 0.7, 1.8,
                    {{Kind::Zipf, 1.0, 0.5, 0.9},
                     {Kind::Scan, 3.0, 0.5, 0.0}}});

    // zeusmp: moderate random set.
    apps.push_back({"zeusmp", 12, 0.8, 2.0,
                    {{Kind::Random, 4.0, 1.0, 0.0}}});

    // hmmer: tiny working set.
    apps.push_back({"hmmer", 8, 0.5, 1.5,
                    {{Kind::Zipf, 0.25, 1.0, 1.0}}});

    // calculix: tiny working set, low intensity.
    apps.push_back({"calculix", 5, 0.6, 1.5,
                    {{Kind::Zipf, 1.0, 1.0, 1.0}}});

    // dealII: small convex.
    apps.push_back({"dealII", 10, 0.7, 1.5,
                    {{Kind::Zipf, 2.0, 1.0, 0.9}}});

    // povray / tonto: the paper's low-memory-intensity caveat apps
    // (<0.1 L2 APKI; Sec. VII-B) — too few LLC accesses for the
    // statistical assumptions, but also too few for it to matter.
    apps.push_back({"povray", 0.1, 0.5, 1.0,
                    {{Kind::Zipf, 0.5, 1.0, 1.0}}});
    apps.push_back({"tonto", 0.1, 0.5, 1.0,
                    {{Kind::Zipf, 0.5, 1.0, 0.9}}});

    return apps;
}

} // namespace

const std::vector<AppSpec>&
specSuite()
{
    static const std::vector<AppSpec> suite = buildSuite();
    return suite;
}

const AppSpec&
findApp(const std::string& name)
{
    for (const AppSpec& app : specSuite()) {
        if (app.name == name)
            return app;
    }
    talus_fatal("unknown app: ", name);
}

std::vector<std::string>
allAppNames()
{
    std::vector<std::string> names;
    for (const AppSpec& app : specSuite())
        names.push_back(app.name);
    return names;
}

std::vector<std::string>
memIntensiveAppNames()
{
    return {"libquantum", "mcf",     "omnetpp",  "xalancbmk", "lbm",
            "GemsFDTD",   "sphinx3", "soplex",   "milc",      "bwaves",
            "cactusADM",  "astar",   "gcc",      "zeusmp",    "dealII",
            "perlbench",  "h264ref", "hmmer"};
}

} // namespace talus
