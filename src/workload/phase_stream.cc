#include "workload/phase_stream.h"

#include <algorithm>

#include "util/log.h"

namespace talus {

PhaseStream::PhaseStream(std::vector<Phase> phases)
    : phases_(std::move(phases))
{
    talus_assert(!phases_.empty(), "a phase stream needs phases");
    for (const Phase& p : phases_) {
        talus_assert(p.stream != nullptr, "phase '", p.label,
                     "' has no stream");
        talus_assert(p.accesses >= 1, "phase '", p.label,
                     "' must last at least one access");
        scheduleLen_ += p.accesses;
    }
}

uint32_t
PhaseStream::currentPhase() const
{
    // The serving cursor advances lazily (on the next pull), so at an
    // exact boundary the upcoming access comes from the next phase.
    return posInPhase_ == phases_[cur_].accesses
               ? (cur_ + 1) % static_cast<uint32_t>(phases_.size())
               : cur_;
}

uint32_t
PhaseStream::phaseAt(uint64_t n) const
{
    uint64_t in_lap = n % scheduleLen_;
    for (uint32_t i = 0; i < phases_.size(); ++i) {
        if (in_lap < phases_[i].accesses)
            return i;
        in_lap -= phases_[i].accesses;
    }
    talus_panic("phaseAt fell off the schedule");
}

Addr
PhaseStream::next()
{
    if (posInPhase_ == phases_[cur_].accesses) {
        cur_ = (cur_ + 1) % phases_.size();
        posInPhase_ = 0;
    }
    posInPhase_++;
    return phases_[cur_].stream->next();
}

void
PhaseStream::nextBlock(Addr* out, uint64_t n)
{
    // Chunk at phase boundaries so each child's own nextBlock fast
    // path runs; bit-exact with next() because every child's
    // nextBlock is (workload_test pins both contracts).
    uint64_t got = 0;
    while (got < n) {
        if (posInPhase_ == phases_[cur_].accesses) {
            cur_ = (cur_ + 1) % phases_.size();
            posInPhase_ = 0;
        }
        const uint64_t take =
            std::min(n - got, phases_[cur_].accesses - posInPhase_);
        phases_[cur_].stream->nextBlock(out + got, take);
        posInPhase_ += take;
        got += take;
    }
}

void
PhaseStream::reset()
{
    for (Phase& p : phases_)
        p.stream->reset();
    cur_ = 0;
    posInPhase_ = 0;
}

std::unique_ptr<AccessStream>
PhaseStream::clone() const
{
    std::vector<Phase> copies;
    copies.reserve(phases_.size());
    for (const Phase& p : phases_)
        copies.push_back({p.label, p.stream->clone(), p.accesses});
    return std::make_unique<PhaseStream>(std::move(copies));
}

} // namespace talus
