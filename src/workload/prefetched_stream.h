/**
 * @file
 * Stream-prefetcher model, as a stream transformer.
 *
 * The paper reports that Talus is agnostic to prefetching
 * (Sec. VII-B): L2 stream prefetchers change the LLC miss curves
 * somewhat but violate none of Talus's assumptions. We model an
 * adaptive L2 stream prefetcher the same way it affects the LLC in
 * real systems: by transforming the LLC access stream. The prefetcher
 * tracks sequential streams; on a detected stream it injects the next
 * `degree` line addresses ahead of the demand access. From the LLC's
 * perspective this is exactly what hardware prefetch fills look like:
 * extra, slightly-early sequential accesses.
 */

#ifndef TALUS_WORKLOAD_PREFETCHED_STREAM_H
#define TALUS_WORKLOAD_PREFETCHED_STREAM_H

#include <deque>
#include <vector>

#include "workload/access_stream.h"

namespace talus {

/** Wraps a stream with an adaptive sequential prefetcher. */
class PrefetchedStream : public AccessStream
{
  public:
    /** Prefetcher parameters. */
    struct Config
    {
        uint32_t streamTableSize = 16; //!< Tracked streams.
        uint32_t trainThreshold = 2;   //!< Sequential hits to train.
        uint32_t degree = 4;           //!< Lines prefetched per trigger.
    };

    /** Wraps @p inner with default prefetcher parameters. */
    explicit PrefetchedStream(std::unique_ptr<AccessStream> inner);

    /**
     * @param inner Demand stream (owned).
     * @param config Prefetcher parameters.
     */
    PrefetchedStream(std::unique_ptr<AccessStream> inner,
                     const Config& config);

    Addr next() override;
    void reset() override;
    std::unique_ptr<AccessStream> clone() const override;
    const char* kind() const override { return "prefetched"; }

    /** Prefetches issued so far (diagnostics). */
    uint64_t prefetchesIssued() const { return issued_; }

  private:
    void observe(Addr addr);

    struct StreamEntry
    {
        Addr lastAddr = 0;
        uint32_t hits = 0;
        bool valid = false;
    };

    std::unique_ptr<AccessStream> inner_;
    Config cfg_;
    std::vector<StreamEntry> table_;
    std::deque<Addr> pending_; //!< Prefetches queued ahead of demand.
    uint64_t issued_ = 0;
};

} // namespace talus

#endif // TALUS_WORKLOAD_PREFETCHED_STREAM_H
