#include "workload/cyclic_scan.h"

#include "util/log.h"

namespace talus {

CyclicScan::CyclicScan(uint64_t num_lines, uint32_t addr_space,
                       uint64_t stride)
    : numLines_(num_lines), stride_(stride),
      base_(static_cast<Addr>(addr_space) << kAddrSpaceShift)
{
    talus_assert(num_lines >= 1, "scan needs a working set");
    talus_assert(stride >= 1, "stride must be >= 1");
}

Addr
CyclicScan::next()
{
    const Addr addr = base_ + (pos_ * stride_) % numLines_;
    pos_++;
    return addr;
}

std::unique_ptr<AccessStream>
CyclicScan::clone() const
{
    return std::make_unique<CyclicScan>(
        numLines_, static_cast<uint32_t>(base_ >> kAddrSpaceShift),
        stride_);
}

} // namespace talus
