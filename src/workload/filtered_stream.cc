#include "workload/filtered_stream.h"

#include <algorithm>

#include "policy/lru.h"
#include "util/log.h"

namespace talus {

SetAssocCache::Config
FilteredStream::filterConfig(uint64_t lines, uint32_t ways)
{
    talus_assert(lines >= ways, "filter smaller than one set");
    SetAssocCache::Config cfg;
    cfg.numWays = ways;
    cfg.numSets = static_cast<uint32_t>(std::max<uint64_t>(
        1, lines / ways));
    return cfg;
}

FilteredStream::FilteredStream(std::unique_ptr<AccessStream> inner,
                               uint64_t filter_lines,
                               uint32_t filter_ways)
    : inner_(std::move(inner)), filterLines_(filter_lines),
      filterWays_(filter_ways),
      filter_(filterConfig(filter_lines, filter_ways),
              std::make_unique<LruPolicy>())
{
    talus_assert(inner_ != nullptr, "filter needs a demand stream");
}

Addr
FilteredStream::next()
{
    // Pull inner accesses until one misses the private cache; that
    // miss is the LLC access. Hot lines hit here and never reach the
    // consumer, exactly like a private L2.
    while (true) {
        const Addr addr = inner_->next();
        innerAccesses_++;
        if (!filter_.access(addr)) {
            passed_++;
            return addr;
        }
    }
}

void
FilteredStream::reset()
{
    inner_->reset();
    filter_.invalidateAll();
    filter_.stats().reset();
    innerAccesses_ = 0;
    passed_ = 0;
}

std::unique_ptr<AccessStream>
FilteredStream::clone() const
{
    return std::make_unique<FilteredStream>(inner_->clone(),
                                            filterLines_, filterWays_);
}

double
FilteredStream::passRatio() const
{
    return innerAccesses_ > 0
               ? static_cast<double>(passed_) /
                     static_cast<double>(innerAccesses_)
               : 1.0;
}

} // namespace talus
