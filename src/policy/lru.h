/**
 * @file
 * Exact LRU replacement.
 *
 * LRU is the baseline policy in the paper: it obeys the stack property
 * (Mattson et al.), which is what makes its miss curve cheaply
 * monitorable with UMONs and hence what makes Talus practical.
 */

#ifndef TALUS_POLICY_LRU_H
#define TALUS_POLICY_LRU_H

#include "cache/repl_policy.h"
#include "util/aligned.h"

namespace talus {

/** Exact LRU via per-line 64-bit timestamps. */
class LruPolicy : public ReplPolicy
{
  public:
    void init(uint32_t num_sets, uint32_t num_ways) override;
    void onHit(uint32_t line, Addr addr, PartId part) override;
    void onInsert(uint32_t line, Addr addr, PartId part) override;
    uint32_t victim(const uint32_t* cands, uint32_t n) override;
    const char* name() const override { return "LRU"; }

    /** LRU victim selection is the argmin of the stamps. */
    const uint64_t* rankKeys() const override { return stamps_.data(); }

    /** Timestamp of @p line; exposed for tests and derived policies. */
    uint64_t stamp(uint32_t line) const { return stamps_[line]; }

    /**
     * Raw stamp/clock state for the fused Vantage+LRU batch kernel
     * (SchemePartitionedCache): the kernel replicates
     * onHit()/onInsert() as stamps[line] = ++clock. Pointers are
     * invalidated by init().
     */
    uint64_t* stampsRaw() { return stamps_.data(); }
    uint64_t* clockRaw() { return &clock_; }

  private:
    // Line-aligned rows: the fused kernel's argmin walks one 128-byte
    // stamp row per victim scan (see util/aligned.h).
    CacheAlignedVec<uint64_t> stamps_;
    uint64_t clock_ = 0;
};

} // namespace talus

#endif // TALUS_POLICY_LRU_H
