/**
 * @file
 * PDP — Protecting Distance Policy (Duong et al., MICRO'12).
 *
 * PDP protects each inserted or promoted line for a "protecting
 * distance" dp, measured in accesses to the line's set. A line whose
 * age exceeds dp becomes evictable; when every candidate is still
 * protected, the incoming line is bypassed instead. dp is recomputed
 * periodically from a sampled reuse-distance histogram by maximizing
 * expected hits per unit of line-time occupancy (the PDP paper's
 * E(dp) metric).
 *
 * The paper uses PDP as a high-performance baseline (Fig. 10-11) and
 * discusses its bypass-based design in Sec. V-C: because PDP
 * approximates optimal bypassing, Talus on LRU can outperform it on
 * applications with cliffs after convex regions (perlbench,
 * cactusADM).
 */

#ifndef TALUS_POLICY_PDP_H
#define TALUS_POLICY_PDP_H

#include <unordered_map>
#include <vector>

#include "cache/repl_policy.h"
#include "util/h3_hash.h"

namespace talus {

/** PDP replacement with periodic protecting-distance recomputation. */
class PdpPolicy : public ReplPolicy
{
  public:
    /** Tuning knobs; defaults follow the PDP paper scaled to our sim. */
    struct Config
    {
        uint32_t maxDp = 256;           //!< Largest protecting distance.
        uint32_t sampleMod = 8;         //!< Sample 1/sampleMod addresses.
        uint64_t recomputeEvery = 1u << 16; //!< Accesses between recomputes.
        uint32_t initialDp = 0;         //!< Starting dp; 0 = numWays.
        uint64_t seed = 0x9D9;          //!< Sampling hash seed.
    };

    /** Constructs PDP with default tuning. */
    PdpPolicy();

    /** Constructs PDP with explicit tuning. */
    explicit PdpPolicy(const Config& config);

    void init(uint32_t num_sets, uint32_t num_ways) override;
    void onHit(uint32_t line, Addr addr, PartId part) override;
    void onMiss(Addr addr, uint32_t set, PartId part) override;
    void onInsert(uint32_t line, Addr addr, PartId part) override;
    uint32_t victim(const uint32_t* cands, uint32_t n) override;
    void nextInterval() override { recompute(); }
    const char* name() const override { return "PDP"; }

    /** Current protecting distance, for tests and benches. */
    uint32_t protectingDistance() const { return dp_; }

  private:
    void tick(uint32_t set);
    void observe(Addr addr, uint32_t set);
    void recompute();

    Config cfg_;
    uint32_t numSets_ = 0;
    uint32_t numWays_ = 0;
    uint32_t dp_ = 0;

    std::vector<uint64_t> setClock_;  //!< Per-set access counter.
    std::vector<uint64_t> stamps_;    //!< Per-line protection stamp.

    H3Hash sampler_;
    uint64_t accessCount_ = 0;
    std::vector<uint64_t> rdHist_;    //!< Sampled reuse distances.
    uint64_t rdColdOrLong_ = 0;       //!< Sampled non-reuses (d > maxDp).
    std::unordered_map<Addr, uint64_t> lastSeen_; //!< Sampled addr times.
};

} // namespace talus

#endif // TALUS_POLICY_PDP_H
