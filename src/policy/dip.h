/**
 * @file
 * DIP — Dynamic Insertion Policy (Qureshi et al., ISCA'07).
 *
 * DIP set-duels LRU insertion against BIP (Bimodal Insertion Policy:
 * insert at the LRU position, except a fraction epsilon = 1/32 of
 * insertions go to MRU). BIP protects the working set against
 * thrashing; dueling picks whichever wins on the current phase.
 * The paper discusses DIP as the canonical protection-by-insertion
 * policy (Sec. II-A, V-C).
 */

#ifndef TALUS_POLICY_DIP_H
#define TALUS_POLICY_DIP_H

#include <vector>

#include "cache/repl_policy.h"
#include "policy/set_dueling.h"
#include "util/rng.h"

namespace talus {

/** DIP: set-dueled LRU vs BIP insertion over an LRU-ordered cache. */
class DipPolicy : public ReplPolicy
{
  public:
    /**
     * @param epsilon BIP's MRU-insertion probability (1/32).
     * @param thread_aware Use per-thread PSELs (TA-DIP).
     * @param max_threads Distinct thread ids when thread-aware.
     * @param seed RNG/dueling seed.
     */
    explicit DipPolicy(double epsilon = 1.0 / 32.0,
                       bool thread_aware = false, uint32_t max_threads = 16,
                       uint64_t seed = 0xD1B);

    void init(uint32_t num_sets, uint32_t num_ways) override;
    void onHit(uint32_t line, Addr addr, PartId part) override;
    void onMiss(Addr addr, uint32_t set, PartId part) override;
    void onInsert(uint32_t line, Addr addr, PartId part) override;
    uint32_t victim(const uint32_t* cands, uint32_t n) override;
    const char* name() const override
    {
        return threadAware_ ? "TA-DIP" : "DIP";
    }

  private:
    double epsilon_;
    bool threadAware_;
    uint32_t maxThreads_;
    uint64_t seed_;
    uint32_t numWays_ = 0;
    std::vector<uint64_t> stamps_;
    uint64_t clock_ = 0;
    SetDueling dueling_;
    Rng rng_;
};

} // namespace talus

#endif // TALUS_POLICY_DIP_H
