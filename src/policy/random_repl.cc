#include "policy/random_repl.h"

#include "util/log.h"

namespace talus {

RandomPolicy::RandomPolicy(uint64_t seed) : rng_(seed) {}

void
RandomPolicy::init(uint32_t num_sets, uint32_t num_ways)
{
    (void)num_sets;
    (void)num_ways;
}

void
RandomPolicy::onHit(uint32_t line, Addr addr, PartId part)
{
    (void)line;
    (void)addr;
    (void)part;
}

void
RandomPolicy::onInsert(uint32_t line, Addr addr, PartId part)
{
    (void)line;
    (void)addr;
    (void)part;
}

uint32_t
RandomPolicy::victim(const uint32_t* cands, uint32_t n)
{
    talus_assert(n > 0, "Random victim() with no candidates");
    return cands[rng_.below(n)];
}

} // namespace talus
