/**
 * @file
 * Not-Recently-Used replacement: a 1-bit approximation of LRU, the
 * classic low-cost baseline (equivalent to RRIP with M = 1).
 */

#ifndef TALUS_POLICY_NRU_H
#define TALUS_POLICY_NRU_H

#include <vector>

#include "cache/repl_policy.h"

namespace talus {

/** NRU: one reference bit per line. */
class NruPolicy : public ReplPolicy
{
  public:
    void init(uint32_t num_sets, uint32_t num_ways) override;
    void onHit(uint32_t line, Addr addr, PartId part) override;
    void onInsert(uint32_t line, Addr addr, PartId part) override;
    uint32_t victim(const uint32_t* cands, uint32_t n) override;
    const char* name() const override { return "NRU"; }

  private:
    std::vector<uint8_t> referenced_;
};

} // namespace talus

#endif // TALUS_POLICY_NRU_H
