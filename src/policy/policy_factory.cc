#include "policy/policy_factory.h"

#include "policy/dip.h"
#include "policy/lru.h"
#include "policy/nru.h"
#include "policy/pdp.h"
#include "policy/random_repl.h"
#include "policy/rrip.h"
#include "policy/ship.h"
#include "util/log.h"

namespace talus {

std::unique_ptr<ReplPolicy>
makePolicy(const std::string& name, uint64_t seed)
{
    if (name == "LRU")
        return std::make_unique<LruPolicy>();
    if (name == "NRU")
        return std::make_unique<NruPolicy>();
    if (name == "Random")
        return std::make_unique<RandomPolicy>(seed);
    if (name == "SRRIP")
        return std::make_unique<RripPolicy>(RripVariant::Srrip, 2,
                                            1.0 / 32.0, 16, seed);
    if (name == "BRRIP")
        return std::make_unique<RripPolicy>(RripVariant::Brrip, 2,
                                            1.0 / 32.0, 16, seed);
    if (name == "DRRIP")
        return std::make_unique<RripPolicy>(RripVariant::Drrip, 2,
                                            1.0 / 32.0, 16, seed);
    if (name == "TA-DRRIP")
        return std::make_unique<RripPolicy>(RripVariant::TaDrrip, 2,
                                            1.0 / 32.0, 16, seed);
    if (name == "DIP")
        return std::make_unique<DipPolicy>(1.0 / 32.0, false, 16, seed);
    if (name == "TA-DIP")
        return std::make_unique<DipPolicy>(1.0 / 32.0, true, 16, seed);
    if (name == "PDP") {
        PdpPolicy::Config cfg;
        cfg.seed = seed;
        return std::make_unique<PdpPolicy>(cfg);
    }
    if (name == "SHiP")
        return std::make_unique<ShipPolicy>();
    talus_fatal("unknown replacement policy: ", name);
}

std::vector<std::string>
knownPolicies()
{
    return {"LRU",  "NRU", "Random", "SRRIP",  "BRRIP", "DRRIP",
            "TA-DRRIP", "DIP", "TA-DIP", "PDP", "SHiP"};
}

} // namespace talus
