#include "policy/nru.h"

#include "util/log.h"

namespace talus {

void
NruPolicy::init(uint32_t num_sets, uint32_t num_ways)
{
    referenced_.assign(static_cast<size_t>(num_sets) * num_ways, 0);
}

void
NruPolicy::onHit(uint32_t line, Addr addr, PartId part)
{
    (void)addr;
    (void)part;
    referenced_[line] = 1;
}

void
NruPolicy::onInsert(uint32_t line, Addr addr, PartId part)
{
    (void)addr;
    (void)part;
    referenced_[line] = 1;
}

uint32_t
NruPolicy::victim(const uint32_t* cands, uint32_t n)
{
    talus_assert(n > 0, "NRU victim() with no candidates");
    for (uint32_t i = 0; i < n; ++i) {
        if (!referenced_[cands[i]])
            return cands[i];
    }
    // All referenced: clear and take the first (round-robin-ish).
    for (uint32_t i = 0; i < n; ++i)
        referenced_[cands[i]] = 0;
    return cands[0];
}

} // namespace talus
