/**
 * @file
 * The RRIP replacement family (Jaleel et al., ISCA'10):
 *
 *  - SRRIP: insert at "long re-reference interval" (RRPV = max-1),
 *    promote to RRPV = 0 on hit, evict lines with RRPV = max,
 *    aging all lines in the set when no such line exists.
 *  - BRRIP: like SRRIP but inserts at RRPV = max except for a small
 *    fraction (epsilon = 1/32) inserted at max-1; thrash-resistant.
 *  - DRRIP: set-dueling between SRRIP and BRRIP insertion.
 *  - TA-DRRIP: DRRIP with per-thread PSELs and leader sets.
 *
 * The paper evaluates SRRIP and DRRIP as high-performance baselines
 * (Fig. 9-11) and TA-DRRIP as the shared-cache baseline (Fig. 12-13).
 */

#ifndef TALUS_POLICY_RRIP_H
#define TALUS_POLICY_RRIP_H

#include <vector>

#include "cache/repl_policy.h"
#include "policy/set_dueling.h"
#include "util/rng.h"

namespace talus {

/** Which member of the RRIP family to run. */
enum class RripVariant
{
    Srrip,
    Brrip,
    Drrip,
    TaDrrip,
};

/** RRIP family policy; see file comment for the variants. */
class RripPolicy : public ReplPolicy
{
  public:
    /**
     * @param variant Family member.
     * @param m_bits RRPV width (paper uses M = 2).
     * @param epsilon BRRIP's long-insertion probability (1/32).
     * @param max_threads Distinct thread ids for TA-DRRIP.
     * @param seed RNG/dueling seed.
     */
    explicit RripPolicy(RripVariant variant, uint32_t m_bits = 2,
                        double epsilon = 1.0 / 32.0,
                        uint32_t max_threads = 16, uint64_t seed = 0x881F);

    void init(uint32_t num_sets, uint32_t num_ways) override;
    void onHit(uint32_t line, Addr addr, PartId part) override;
    void onMiss(Addr addr, uint32_t set, PartId part) override;
    void onInsert(uint32_t line, Addr addr, PartId part) override;
    uint32_t victim(const uint32_t* cands, uint32_t n) override;
    const char* name() const override;

    /** RRPV of @p line, for tests. */
    uint8_t rrpv(uint32_t line) const { return rrpv_[line]; }

  private:
    bool usesBrripInsertion(uint32_t set, PartId part) const;

    RripVariant variant_;
    uint8_t maxRrpv_;
    double epsilon_;
    uint32_t maxThreads_;
    uint64_t seed_;
    uint32_t numWays_ = 0;
    std::vector<uint8_t> rrpv_;
    SetDueling dueling_;
    Rng rng_;
};

} // namespace talus

#endif // TALUS_POLICY_RRIP_H
