/**
 * @file
 * Random replacement: evicts a uniformly random candidate. Useful as a
 * strawman baseline and for associativity-insensitivity tests.
 */

#ifndef TALUS_POLICY_RANDOM_REPL_H
#define TALUS_POLICY_RANDOM_REPL_H

#include "cache/repl_policy.h"
#include "util/rng.h"

namespace talus {

/** Uniform-random replacement. */
class RandomPolicy : public ReplPolicy
{
  public:
    /** @param seed RNG seed, for reproducible experiments. */
    explicit RandomPolicy(uint64_t seed = 0x5EED);

    void init(uint32_t num_sets, uint32_t num_ways) override;
    void onHit(uint32_t line, Addr addr, PartId part) override;
    void onInsert(uint32_t line, Addr addr, PartId part) override;
    uint32_t victim(const uint32_t* cands, uint32_t n) override;
    const char* name() const override { return "Random"; }

  private:
    Rng rng_;
};

} // namespace talus

#endif // TALUS_POLICY_RANDOM_REPL_H
