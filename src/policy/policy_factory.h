/**
 * @file
 * Creates replacement policies by name. Used by benches, examples,
 * and parameterized tests so a policy choice is a plain string
 * ("LRU", "SRRIP", "BRRIP", "DRRIP", "TA-DRRIP", "DIP", "TA-DIP",
 * "PDP", "NRU", "Random").
 */

#ifndef TALUS_POLICY_POLICY_FACTORY_H
#define TALUS_POLICY_POLICY_FACTORY_H

#include <memory>
#include <string>
#include <vector>

#include "cache/repl_policy.h"

namespace talus {

/**
 * Instantiates the policy named @p name; fatal on unknown names.
 *
 * @param name Policy name (see file comment for the list).
 * @param seed Seed for stochastic policies (BRRIP, DIP, Random, PDP).
 */
std::unique_ptr<ReplPolicy> makePolicy(const std::string& name,
                                       uint64_t seed = 0xFAC7);

/** Names accepted by makePolicy(), for enumeration in tests/benches. */
std::vector<std::string> knownPolicies();

} // namespace talus

#endif // TALUS_POLICY_POLICY_FACTORY_H
