#include "policy/rrip.h"

#include "util/log.h"

namespace talus {

RripPolicy::RripPolicy(RripVariant variant, uint32_t m_bits, double epsilon,
                       uint32_t max_threads, uint64_t seed)
    : variant_(variant), maxRrpv_(static_cast<uint8_t>((1u << m_bits) - 1)),
      epsilon_(epsilon), maxThreads_(max_threads), seed_(seed), rng_(seed)
{
    talus_assert(m_bits >= 1 && m_bits <= 7, "RRIP M bits in [1,7]");
}

void
RripPolicy::init(uint32_t num_sets, uint32_t num_ways)
{
    numWays_ = num_ways;
    rrpv_.assign(static_cast<size_t>(num_sets) * num_ways, maxRrpv_);
    if (variant_ == RripVariant::Drrip) {
        dueling_.init(num_sets, 1, 1.0 / 32.0, 10, seed_);
    } else if (variant_ == RripVariant::TaDrrip) {
        dueling_.init(num_sets, maxThreads_, 1.0 / 32.0, 10, seed_);
    }
    rng_.seed(seed_);
}

void
RripPolicy::onHit(uint32_t line, Addr addr, PartId part)
{
    (void)addr;
    (void)part;
    // Hit promotion (HP policy): promote to near-immediate re-reference.
    rrpv_[line] = 0;
}

void
RripPolicy::onMiss(Addr addr, uint32_t set, PartId part)
{
    (void)addr;
    if (variant_ == RripVariant::Drrip || variant_ == RripVariant::TaDrrip)
        dueling_.onMiss(set, part);
}

bool
RripPolicy::usesBrripInsertion(uint32_t set, PartId part) const
{
    switch (variant_) {
      case RripVariant::Srrip:
        return false;
      case RripVariant::Brrip:
        return true;
      case RripVariant::Drrip:
        return dueling_.useB(set, 0);
      case RripVariant::TaDrrip:
      default:
        return dueling_.useB(set, part);
    }
}

void
RripPolicy::onInsert(uint32_t line, Addr addr, PartId part)
{
    (void)addr;
    const uint32_t set = line / numWays_;
    if (usesBrripInsertion(set, part)) {
        // BRRIP: distant re-reference, occasionally long.
        rrpv_[line] = rng_.chance(epsilon_)
                          ? static_cast<uint8_t>(maxRrpv_ - 1)
                          : maxRrpv_;
    } else {
        // SRRIP: long re-reference interval.
        rrpv_[line] = static_cast<uint8_t>(maxRrpv_ - 1);
    }
}

uint32_t
RripPolicy::victim(const uint32_t* cands, uint32_t n)
{
    talus_assert(n > 0, "RRIP victim() with no candidates");
    // Find an RRPV = max line, aging candidates until one appears.
    // Aging is bounded by maxRrpv_ iterations.
    while (true) {
        for (uint32_t i = 0; i < n; ++i) {
            if (rrpv_[cands[i]] == maxRrpv_)
                return cands[i];
        }
        for (uint32_t i = 0; i < n; ++i)
            rrpv_[cands[i]]++;
    }
}

const char*
RripPolicy::name() const
{
    switch (variant_) {
      case RripVariant::Srrip:
        return "SRRIP";
      case RripVariant::Brrip:
        return "BRRIP";
      case RripVariant::Drrip:
        return "DRRIP";
      case RripVariant::TaDrrip:
      default:
        return "TA-DRRIP";
    }
}

} // namespace talus
