#include "policy/lru.h"

#include "util/log.h"

namespace talus {

void
LruPolicy::init(uint32_t num_sets, uint32_t num_ways)
{
    stamps_.assign(static_cast<size_t>(num_sets) * num_ways, 0);
    clock_ = 0;
}

void
LruPolicy::onHit(uint32_t line, Addr addr, PartId part)
{
    (void)addr;
    (void)part;
    stamps_[line] = ++clock_;
}

void
LruPolicy::onInsert(uint32_t line, Addr addr, PartId part)
{
    (void)addr;
    (void)part;
    stamps_[line] = ++clock_;
}

uint32_t
LruPolicy::victim(const uint32_t* cands, uint32_t n)
{
    talus_assert(n > 0, "LRU victim() with no candidates");
    uint32_t best = cands[0];
    for (uint32_t i = 1; i < n; ++i) {
        if (stamps_[cands[i]] < stamps_[best])
            best = cands[i];
    }
    return best;
}

} // namespace talus
