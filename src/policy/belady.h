/**
 * @file
 * Belady's MIN — optimal offline replacement (Belady, 1966).
 *
 * MIN evicts the line whose next use is furthest in the future. It
 * needs the full trace, so it is exposed as standalone simulation
 * functions rather than a ReplPolicy. The paper proves that optimal
 * replacement is convex (Corollary 7); tests and the
 * ablation_min_convexity bench verify our simulated MIN against that
 * claim, and MIN lower-bounds every online policy in tests.
 */

#ifndef TALUS_POLICY_BELADY_H
#define TALUS_POLICY_BELADY_H

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace talus {

/**
 * Computes, for each trace position, the index of the next access to
 * the same address (trace.size() if none).
 */
std::vector<uint64_t> nextUseIndices(const std::vector<Addr>& trace);

/**
 * Misses of a fully-associative MIN cache of @p capacity_lines lines
 * over @p trace. Zero capacity misses every access.
 */
uint64_t minMisses(const std::vector<Addr>& trace, uint64_t capacity_lines);

/**
 * MIN miss counts at several capacities (each simulated exactly).
 */
std::vector<uint64_t> minMissCurve(const std::vector<Addr>& trace,
                                   const std::vector<uint64_t>& capacities);

/**
 * Misses of a set-associative MIN cache: per-set optimal replacement,
 * with hashed set indexing matching SetAssocCache's default.
 */
uint64_t minMissesSetAssoc(const std::vector<Addr>& trace, uint32_t num_sets,
                           uint32_t num_ways, uint64_t hash_seed = 0xC0FFEE);

} // namespace talus

#endif // TALUS_POLICY_BELADY_H
