#include "policy/belady.h"

#include <set>
#include <unordered_map>
#include <utility>

#include "util/bits.h"
#include "util/log.h"

namespace talus {

std::vector<uint64_t>
nextUseIndices(const std::vector<Addr>& trace)
{
    const uint64_t n = trace.size();
    std::vector<uint64_t> next(n, n);
    std::unordered_map<Addr, uint64_t> last;
    last.reserve(trace.size() / 4 + 16);
    for (uint64_t i = n; i-- > 0;) {
        auto it = last.find(trace[i]);
        next[i] = (it != last.end()) ? it->second : n;
        last[trace[i]] = i;
    }
    return next;
}

namespace {

/**
 * Core MIN simulation over one access sequence with precomputed
 * next-use indices. Resident lines are kept in an ordered set keyed by
 * next use, so the furthest-future line is *rbegin().
 */
uint64_t
minMissesWithNextUse(const std::vector<Addr>& trace,
                     const std::vector<uint64_t>& next,
                     const std::vector<uint64_t>& positions,
                     uint64_t capacity_lines)
{
    if (capacity_lines == 0)
        return positions.size();

    uint64_t misses = 0;
    // (next_use, addr) of resident lines; largest next_use = victim.
    std::set<std::pair<uint64_t, Addr>> resident;
    std::unordered_map<Addr, uint64_t> resident_next;
    resident_next.reserve(capacity_lines * 2);

    for (uint64_t pos : positions) {
        const Addr addr = trace[pos];
        const uint64_t next_use = next[pos];
        auto it = resident_next.find(addr);
        if (it != resident_next.end()) {
            // Hit: the stored key is this access's position.
            resident.erase({it->second, addr});
            resident.insert({next_use, addr});
            it->second = next_use;
        } else {
            misses++;
            if (resident.size() >= capacity_lines) {
                auto victim = std::prev(resident.end());
                resident_next.erase(victim->second);
                resident.erase(victim);
            }
            resident.insert({next_use, addr});
            resident_next.emplace(addr, next_use);
        }
    }
    return misses;
}

std::vector<uint64_t>
allPositions(size_t n)
{
    std::vector<uint64_t> positions(n);
    for (size_t i = 0; i < n; ++i)
        positions[i] = i;
    return positions;
}

} // namespace

uint64_t
minMisses(const std::vector<Addr>& trace, uint64_t capacity_lines)
{
    const auto next = nextUseIndices(trace);
    return minMissesWithNextUse(trace, next, allPositions(trace.size()),
                                capacity_lines);
}

std::vector<uint64_t>
minMissCurve(const std::vector<Addr>& trace,
             const std::vector<uint64_t>& capacities)
{
    const auto next = nextUseIndices(trace);
    const auto positions = allPositions(trace.size());
    std::vector<uint64_t> misses;
    misses.reserve(capacities.size());
    for (uint64_t c : capacities)
        misses.push_back(minMissesWithNextUse(trace, next, positions, c));
    return misses;
}

uint64_t
minMissesSetAssoc(const std::vector<Addr>& trace, uint32_t num_sets,
                  uint32_t num_ways, uint64_t hash_seed)
{
    talus_assert(num_sets > 0 && num_ways > 0, "bad MIN geometry");
    const auto next = nextUseIndices(trace);

    // Bucket positions by set; per-set MIN is exact for set-assoc
    // caches because sets are independent.
    std::vector<std::vector<uint64_t>> by_set(num_sets);
    for (uint64_t i = 0; i < trace.size(); ++i) {
        uint64_t h = mix64(trace[i] ^ hash_seed);
        const uint32_t set = (num_sets & (num_sets - 1)) == 0
                                 ? static_cast<uint32_t>(h & (num_sets - 1))
                                 : static_cast<uint32_t>(h % num_sets);
        by_set[set].push_back(i);
    }

    uint64_t misses = 0;
    for (const auto& positions : by_set)
        misses += minMissesWithNextUse(trace, next, positions, num_ways);
    return misses;
}

} // namespace talus
