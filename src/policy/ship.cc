#include "policy/ship.h"

#include "util/bits.h"
#include "util/log.h"

namespace talus {

ShipPolicy::ShipPolicy() : ShipPolicy(Config{}) {}

ShipPolicy::ShipPolicy(const Config& config) : cfg_(config)
{
    talus_assert(cfg_.mBits >= 1 && cfg_.mBits <= 7, "SHiP M in [1,7]");
    talus_assert(cfg_.shctBits >= 1 && cfg_.shctBits <= 8,
                 "SHCT width in [1,8]");
    talus_assert(cfg_.shctEntries >= 2, "SHCT needs entries");
    maxRrpv_ = static_cast<uint8_t>((1u << cfg_.mBits) - 1);
    shctMax_ = (1u << cfg_.shctBits) - 1;
}

void
ShipPolicy::init(uint32_t num_sets, uint32_t num_ways)
{
    const size_t lines = static_cast<size_t>(num_sets) * num_ways;
    rrpv_.assign(lines, maxRrpv_);
    reused_.assign(lines, 0);
    lineSig_.assign(lines, 0);
    // Start counters weakly positive so cold signatures are not all
    // treated as never-reused before any evidence accumulates.
    shct_.assign(cfg_.shctEntries, 1);
}

uint32_t
ShipPolicy::signature(Addr addr) const
{
    return static_cast<uint32_t>(mix64(addr >> cfg_.regionLineBits) %
                                 cfg_.shctEntries);
}

uint32_t
ShipPolicy::shctOf(Addr addr) const
{
    return shct_[signature(addr)];
}

void
ShipPolicy::onHit(uint32_t line, Addr addr, PartId part)
{
    (void)addr;
    (void)part;
    rrpv_[line] = 0;
    if (!reused_[line]) {
        reused_[line] = 1;
        uint32_t& ctr = shct_[lineSig_[line]];
        if (ctr < shctMax_)
            ctr++;
    }
}

void
ShipPolicy::onInsert(uint32_t line, Addr addr, PartId part)
{
    (void)part;
    // The previous occupant's outcome was already trained in
    // victim(); this line starts a fresh prediction.
    const uint32_t sig = signature(addr);
    lineSig_[line] = sig;
    reused_[line] = 0;
    // Never-reused signature: insert at distant re-reference.
    rrpv_[line] = shct_[sig] == 0 ? maxRrpv_
                                  : static_cast<uint8_t>(maxRrpv_ - 1);
}

uint32_t
ShipPolicy::victim(const uint32_t* cands, uint32_t n)
{
    talus_assert(n > 0, "SHiP victim() with no candidates");
    while (true) {
        for (uint32_t i = 0; i < n; ++i) {
            const uint32_t line = cands[i];
            if (rrpv_[line] == maxRrpv_) {
                // Train the SHCT on the outgoing line's outcome.
                if (!reused_[line]) {
                    uint32_t& ctr = shct_[lineSig_[line]];
                    if (ctr > 0)
                        ctr--;
                }
                return line;
            }
        }
        for (uint32_t i = 0; i < n; ++i)
            rrpv_[cands[i]]++;
    }
}

} // namespace talus
