#include "policy/dip.h"

#include "util/log.h"

namespace talus {

DipPolicy::DipPolicy(double epsilon, bool thread_aware, uint32_t max_threads,
                     uint64_t seed)
    : epsilon_(epsilon), threadAware_(thread_aware),
      maxThreads_(max_threads), seed_(seed), rng_(seed)
{
}

void
DipPolicy::init(uint32_t num_sets, uint32_t num_ways)
{
    numWays_ = num_ways;
    stamps_.assign(static_cast<size_t>(num_sets) * num_ways, 0);
    clock_ = 0;
    dueling_.init(num_sets, threadAware_ ? maxThreads_ : 1, 1.0 / 32.0, 10,
                  seed_);
    rng_.seed(seed_);
}

void
DipPolicy::onHit(uint32_t line, Addr addr, PartId part)
{
    (void)addr;
    (void)part;
    stamps_[line] = ++clock_;
}

void
DipPolicy::onMiss(Addr addr, uint32_t set, PartId part)
{
    (void)addr;
    dueling_.onMiss(set, threadAware_ ? part : 0);
}

void
DipPolicy::onInsert(uint32_t line, Addr addr, PartId part)
{
    (void)addr;
    const uint32_t set = line / numWays_;
    const PartId tid = threadAware_ ? part : 0;
    const bool bip = dueling_.useB(set, tid);
    if (bip && !rng_.chance(epsilon_)) {
        // BIP: leave at the LRU position. A stamp of 0 would alias all
        // BIP lines; instead stamp "older than everything resident" by
        // using a decreasing negative-age region of the clock.
        // Simplest exact approach: stamp below current minimum.
        stamps_[line] = 0; // Always the next victim unless promoted.
    } else {
        // LRU (MRU insertion).
        stamps_[line] = ++clock_;
    }
}

uint32_t
DipPolicy::victim(const uint32_t* cands, uint32_t n)
{
    talus_assert(n > 0, "DIP victim() with no candidates");
    uint32_t best = cands[0];
    for (uint32_t i = 1; i < n; ++i) {
        if (stamps_[cands[i]] < stamps_[best])
            best = cands[i];
    }
    return best;
}

} // namespace talus
