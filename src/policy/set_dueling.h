/**
 * @file
 * Set dueling (Qureshi et al., ISCA'07), the mechanism DIP and DRRIP
 * use to pick between two insertion policies at runtime.
 *
 * A few "leader" sets are permanently dedicated to each insertion
 * policy; a saturating counter (PSEL) tracks which leader group
 * misses more, and all "follower" sets use the winner. Thread-aware
 * variants (TA-DIP / TA-DRRIP) keep one PSEL and one pair of leader
 * constituencies per thread.
 */

#ifndef TALUS_POLICY_SET_DUELING_H
#define TALUS_POLICY_SET_DUELING_H

#include <cstdint>
#include <vector>

#include "util/types.h"

namespace talus {

/** Set-dueling monitor with per-thread PSEL counters. */
class SetDueling
{
  public:
    /** Role of a set for a given thread. */
    enum class Role
    {
        LeaderA,  //!< Always uses policy A.
        LeaderB,  //!< Always uses policy B.
        Follower, //!< Uses the PSEL winner.
    };

    /**
     * Configures the monitor.
     *
     * @param num_sets Sets in the cache.
     * @param max_threads Number of thread ids with distinct PSELs.
     * @param leader_frac Approximate fraction of sets dedicated to
     *        each policy per thread (e.g., 1/32).
     * @param psel_bits Width of the saturating PSEL counters.
     * @param seed Hash seed for leader assignment.
     */
    void init(uint32_t num_sets, uint32_t max_threads = 1,
              double leader_frac = 1.0 / 32.0, uint32_t psel_bits = 10,
              uint64_t seed = 0xD0E1);

    /** Role of @p set for thread @p tid. */
    Role role(uint32_t set, PartId tid) const;

    /**
     * Updates PSEL on a miss in @p set by thread @p tid. Misses in
     * A-leaders increment (evidence against A); misses in B-leaders
     * decrement.
     */
    void onMiss(uint32_t set, PartId tid);

    /** True if followers of @p tid should use policy B. */
    bool preferB(PartId tid) const;

    /**
     * True if the insertion into @p set by @p tid should use policy B
     * (combines leader roles and the PSEL winner).
     */
    bool useB(uint32_t set, PartId tid) const;

  private:
    uint32_t clampTid(PartId tid) const;

    uint32_t numSets_ = 0;
    uint32_t maxThreads_ = 1;
    uint32_t pselMax_ = 0;
    uint32_t pselMid_ = 0;
    uint64_t seed_ = 0;
    uint32_t leaderMod_ = 64;
    std::vector<uint32_t> psel_;
};

} // namespace talus

#endif // TALUS_POLICY_SET_DUELING_H
