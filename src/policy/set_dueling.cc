#include "policy/set_dueling.h"

#include <algorithm>

#include "util/bits.h"
#include "util/log.h"

namespace talus {

void
SetDueling::init(uint32_t num_sets, uint32_t max_threads, double leader_frac,
                 uint32_t psel_bits, uint64_t seed)
{
    talus_assert(num_sets > 0, "set dueling needs sets");
    talus_assert(max_threads >= 1, "set dueling needs >= 1 thread");
    talus_assert(leader_frac > 0 && leader_frac < 0.5,
                 "leader fraction must be in (0, 0.5), got ", leader_frac);
    numSets_ = num_sets;
    maxThreads_ = max_threads;
    seed_ = seed;
    pselMax_ = (1u << psel_bits) - 1;
    pselMid_ = 1u << (psel_bits - 1);
    psel_.assign(maxThreads_, pselMid_);
    // Each thread owns two leader constituencies of ~leader_frac sets.
    // Capping the modulus at numSets guarantees at least one leader
    // of each kind even in very small caches, where a probabilistic
    // assignment could leave the duel with no constituents at all.
    leaderMod_ = std::max<uint32_t>(
        2, std::min<uint32_t>(num_sets,
                              static_cast<uint32_t>(1.0 / leader_frac)));
}

uint32_t
SetDueling::clampTid(PartId tid) const
{
    return static_cast<uint32_t>(tid) % maxThreads_;
}

SetDueling::Role
SetDueling::role(uint32_t set, PartId tid) const
{
    // Deterministic striding: every leaderMod_-th set (with a per-
    // thread pseudo-random rotation) leads for A, the next one for B.
    // This gives exact leader counts per thread — important for small
    // caches — while different threads duel on different sets (the
    // TA-DIP "feedback" construction).
    const uint64_t offset =
        mix64(seed_ ^ (0x9E3779B97F4A7C15ull * (clampTid(tid) + 1)));
    const uint64_t bucket = (set + offset) % leaderMod_;
    if (bucket == 0)
        return Role::LeaderA;
    if (bucket == 1)
        return Role::LeaderB;
    return Role::Follower;
}

void
SetDueling::onMiss(uint32_t set, PartId tid)
{
    const uint32_t t = clampTid(tid);
    switch (role(set, tid)) {
      case Role::LeaderA:
        if (psel_[t] < pselMax_)
            psel_[t]++;
        break;
      case Role::LeaderB:
        if (psel_[t] > 0)
            psel_[t]--;
        break;
      case Role::Follower:
        break;
    }
}

bool
SetDueling::preferB(PartId tid) const
{
    // High PSEL = A-leaders miss more = use B.
    return psel_[clampTid(tid)] > pselMid_;
}

bool
SetDueling::useB(uint32_t set, PartId tid) const
{
    switch (role(set, tid)) {
      case Role::LeaderA:
        return false;
      case Role::LeaderB:
        return true;
      case Role::Follower:
      default:
        return preferB(tid);
    }
}

} // namespace talus
