/**
 * @file
 * SHiP — Signature-based Hit Predictor (Wu et al., MICRO'44).
 *
 * SHiP extends RRIP with learned insertion: each access carries a
 * signature (here the memory-region variant, SHiP-Mem: high address
 * bits), and a table of saturating counters (SHCT) records whether
 * lines with that signature tend to be reused. Insertions whose
 * signature never sees reuse go straight to distant re-reference
 * (RRPV max); others insert like SRRIP.
 *
 * The Talus paper lists SHiP among the high-performance policies
 * whose empirical design defeats cheap miss-curve monitoring
 * (Sec. II-A) — it is included here both as an extra baseline and as
 * another demonstration that Talus can wrap any policy given a
 * monitored curve (via monitor/policy_monitor.h).
 */

#ifndef TALUS_POLICY_SHIP_H
#define TALUS_POLICY_SHIP_H

#include <vector>

#include "cache/repl_policy.h"

namespace talus {

/** SHiP-Mem: RRIP with signature-trained insertion. */
class ShipPolicy : public ReplPolicy
{
  public:
    /** Tuning knobs (defaults follow the SHiP paper, scaled). */
    struct Config
    {
        uint32_t mBits = 2;          //!< RRPV width.
        uint32_t shctBits = 3;       //!< SHCT counter width.
        uint32_t shctEntries = 16384; //!< SHCT size.
        uint32_t regionLineBits = 8; //!< Lines per signature region
                                     //!< (log2): 8 -> 16KB regions.
    };

    ShipPolicy();
    explicit ShipPolicy(const Config& config);

    void init(uint32_t num_sets, uint32_t num_ways) override;
    void onHit(uint32_t line, Addr addr, PartId part) override;
    void onInsert(uint32_t line, Addr addr, PartId part) override;
    uint32_t victim(const uint32_t* cands, uint32_t n) override;
    const char* name() const override { return "SHiP"; }

    /** SHCT counter for @p addr's signature, for tests. */
    uint32_t shctOf(Addr addr) const;

  private:
    uint32_t signature(Addr addr) const;

    Config cfg_;
    uint8_t maxRrpv_ = 3;
    uint32_t shctMax_ = 7;
    std::vector<uint8_t> rrpv_;
    std::vector<uint8_t> reused_;   //!< Per-line outcome bit.
    std::vector<uint32_t> lineSig_; //!< Per-line signature.
    std::vector<uint32_t> shct_;
};

} // namespace talus

#endif // TALUS_POLICY_SHIP_H
