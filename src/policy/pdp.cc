#include "policy/pdp.h"

#include "util/log.h"

namespace talus {

PdpPolicy::PdpPolicy() : PdpPolicy(Config{}) {}

PdpPolicy::PdpPolicy(const Config& config)
    : cfg_(config), sampler_(16, config.seed)
{
    talus_assert(cfg_.maxDp >= 2, "PDP maxDp must be >= 2");
    talus_assert(cfg_.sampleMod >= 1, "PDP sampleMod must be >= 1");
}

void
PdpPolicy::init(uint32_t num_sets, uint32_t num_ways)
{
    numSets_ = num_sets;
    numWays_ = num_ways;
    // Until the first recompute: protect ~one set's worth by default.
    dp_ = cfg_.initialDp > 0 ? cfg_.initialDp : num_ways;
    setClock_.assign(num_sets, 0);
    stamps_.assign(static_cast<size_t>(num_sets) * num_ways, 0);
    rdHist_.assign(cfg_.maxDp + 1, 0);
    rdColdOrLong_ = 0;
    lastSeen_.clear();
    accessCount_ = 0;
}

void
PdpPolicy::tick(uint32_t set)
{
    setClock_[set]++;
    // Recompute on a wall-clock of *all* accesses, not just sampled
    // ones, so the period does not stretch with the sampling rate.
    if (++accessCount_ % cfg_.recomputeEvery == 0)
        recompute();
}

void
PdpPolicy::observe(Addr addr, uint32_t set)
{
    // Reuse-distance sampling in set-local access counts. Because each
    // address maps to a fixed set, the per-set clock measures exactly
    // the distances the protection check uses.
    if (cfg_.sampleMod > 1 &&
        (sampler_.hash(addr) % cfg_.sampleMod) != 0) {
        return;
    }
    const uint64_t now = setClock_[set];
    auto it = lastSeen_.find(addr);
    if (it != lastSeen_.end()) {
        const uint64_t d = now - it->second;
        if (d >= 1 && d <= cfg_.maxDp)
            rdHist_[d]++;
        else
            rdColdOrLong_++;
        it->second = now;
    } else {
        rdColdOrLong_++;
        lastSeen_.emplace(addr, now);
    }
}

void
PdpPolicy::recompute()
{
    // Maximize E(dp) = hits(dp) / cost(dp), where cost charges each
    // reuse its distance in line-time and each non-reuse dp line-time
    // (the PDP paper's expected hits per line per unit time).
    uint64_t total = rdColdOrLong_;
    for (uint32_t d = 1; d <= cfg_.maxDp; ++d)
        total += rdHist_[d];
    if (total < 1000)
        return; // Not enough samples to trust.

    double best_score = -1.0;
    uint32_t best_dp = numWays_;
    uint64_t hits = 0;
    uint64_t reuse_cost = 0;
    for (uint32_t dp = 1; dp <= cfg_.maxDp; ++dp) {
        hits += rdHist_[dp];
        reuse_cost += static_cast<uint64_t>(dp) * rdHist_[dp];
        const double cost = static_cast<double>(reuse_cost) +
                            static_cast<double>(dp) *
                                static_cast<double>(total - hits);
        const double score =
            cost > 0 ? static_cast<double>(hits) / cost : 0.0;
        if (score > best_score) {
            best_score = score;
            best_dp = dp;
        }
    }
    dp_ = best_dp;

    // Decay history so dp tracks phase changes.
    for (auto& h : rdHist_)
        h /= 2;
    rdColdOrLong_ /= 2;
    if (lastSeen_.size() > 1u << 20)
        lastSeen_.clear();
}

void
PdpPolicy::onHit(uint32_t line, Addr addr, PartId part)
{
    (void)part;
    const uint32_t set = line / numWays_;
    tick(set);
    observe(addr, set);
    // Promotion: re-protect the line for another dp set-accesses.
    stamps_[line] = setClock_[set];
}

void
PdpPolicy::onMiss(Addr addr, uint32_t set, PartId part)
{
    (void)part;
    tick(set);
    observe(addr, set);
}

void
PdpPolicy::onInsert(uint32_t line, Addr addr, PartId part)
{
    (void)addr;
    (void)part;
    const uint32_t set = line / numWays_;
    stamps_[line] = setClock_[set];
}

uint32_t
PdpPolicy::victim(const uint32_t* cands, uint32_t n)
{
    talus_assert(n > 0, "PDP victim() with no candidates");
    const uint32_t set = cands[0] / numWays_;
    const uint64_t now = setClock_[set];

    uint32_t best = kBypassLine;
    uint64_t best_age = 0;
    for (uint32_t i = 0; i < n; ++i) {
        const uint64_t age = now - stamps_[cands[i]];
        if (age >= dp_ && age >= best_age) {
            best = cands[i];
            best_age = age;
        }
    }
    // All candidates protected: bypass the incoming line.
    return best;
}

} // namespace talus
