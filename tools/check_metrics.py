#!/usr/bin/env python3
"""Validate a Prometheus text-format metrics dump.

Usage:
    check_metrics.py METRICS.prom [--require NAME ...]
                     [--require-nonzero NAME ...]

Checks that the file the engine's --metrics=PATH exporter wrote is
well-formed, stock-scrapeable Prometheus exposition:

  - every non-comment line parses as `name{labels} value` (or
    `name value`), with legal metric and label names;
  - every series is covered by exactly one `# TYPE` line, emitted
    before its first sample;
  - counter families follow the conventions the exporter promises:
    `_total`-suffixed names, non-negative integer-valued samples;
  - histogram families carry cumulative `_bucket{le="..."}` series
    (counts non-decreasing as `le` grows, ending at `le="+Inf"`),
    plus `_sum` and `_count`, with the +Inf bucket equal to `_count`.

--require NAME fails unless a family NAME is present;
--require-nonzero NAME additionally demands at least one sample of
the family with a value > 0 (how CI pins "the control plane actually
reported staleness" rather than just "the series exists").

Exits 0 when every check passes, 1 otherwise, listing each violation.
"""

import argparse
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# One rendered label pair; values are quoted with no escapes (the
# exporter never emits quotes or backslashes inside values).
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="([^"\\]*)"')
SERIES = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
                    r"(?:\{([^}]*)\})?\s+(\S+)$")
TYPE_LINE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*)"
                       r" (counter|gauge|histogram)$")

# A histogram family NAME owns series NAME_bucket/_sum/_count.
HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


def family_of(name, types):
    """The declared family a series name belongs to."""
    if name in types:
        return name
    for suffix in HISTOGRAM_SUFFIXES:
        if name.endswith(suffix):
            base = name[: -len(suffix)]
            if types.get(base) == "histogram":
                return base
    return None


def parse_value(raw):
    try:
        return float(raw)
    except ValueError:
        return None


def le_key(le):
    return math.inf if le == "+Inf" else float(le)


def check(path, require, require_nonzero):
    errors = []
    types = {}          # family -> declared type
    family_values = {}  # family -> [(labels_dict, value)]
    buckets = {}        # (family, non-le labels) -> {le: value}

    with open(path) as f:
        lines = f.read().splitlines()
    if not lines:
        errors.append("file is empty")

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = TYPE_LINE.match(line)
            if not m:
                errors.append(f"line {lineno}: unrecognized comment "
                              f"(only '# TYPE name kind' is emitted): "
                              f"{line!r}")
                continue
            name, kind = m.groups()
            if name in types:
                errors.append(f"line {lineno}: duplicate TYPE for "
                              f"{name}")
            types[name] = kind
            continue

        m = SERIES.match(line)
        if not m:
            errors.append(f"line {lineno}: unparsable series: "
                          f"{line!r}")
            continue
        name, labelstr, raw = m.groups()
        if not METRIC_NAME.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
            continue
        labels = {}
        if labelstr:
            consumed = LABEL_PAIR.sub("", labelstr).replace(",", "")
            if consumed.strip():
                errors.append(f"line {lineno}: malformed labels "
                              f"{labelstr!r}")
                continue
            for key, value in LABEL_PAIR.findall(labelstr):
                if not LABEL_NAME.match(key):
                    errors.append(f"line {lineno}: bad label name "
                                  f"{key!r}")
                labels[key] = value
        value = parse_value(raw)
        if value is None:
            errors.append(f"line {lineno}: bad sample value {raw!r}")
            continue

        family = family_of(name, types)
        if family is None:
            errors.append(f"line {lineno}: series {name} has no "
                          f"preceding # TYPE line")
            continue
        family_values.setdefault(family, []).append((labels, value))

        kind = types[family]
        if kind == "counter":
            if not family.endswith("_total"):
                errors.append(f"{family}: counter family not "
                              f"_total-suffixed")
            if value < 0 or value != int(value):
                errors.append(f"line {lineno}: counter {name} sample "
                              f"{raw} is not a non-negative integer")
        elif kind == "histogram" and name == family + "_bucket":
            if "le" not in labels:
                errors.append(f"line {lineno}: bucket series without "
                              f"an le label")
                continue
            rest = tuple(sorted((k, v) for k, v in labels.items()
                                if k != "le"))
            buckets.setdefault((family, rest), {})[labels["le"]] = value

    # Histogram family shape: cumulative buckets ending at +Inf.
    for (family, rest), series in sorted(buckets.items()):
        where = f"{family}{{{dict(rest)}}}" if rest else family
        if "+Inf" not in series:
            errors.append(f"{where}: buckets do not end at le=\"+Inf\"")
            continue
        ordered = sorted(series.items(), key=lambda kv: le_key(kv[0]))
        cumulative = [v for _, v in ordered]
        if any(b < a for a, b in zip(cumulative, cumulative[1:])):
            errors.append(f"{where}: bucket counts are not cumulative")

    # Second walk for per-family _count vs +Inf agreement (simpler
    # than tracking it during the first pass).
    counts = {}
    for lineno, line in enumerate(lines, 1):
        m = SERIES.match(line) if not line.startswith("#") else None
        if not m:
            continue
        name, labelstr, raw = m.groups()
        labels = dict(LABEL_PAIR.findall(labelstr or ""))
        for family, kind in types.items():
            if kind == "histogram" and name == family + "_count":
                rest = tuple(sorted(labels.items()))
                counts[(family, rest)] = parse_value(raw)
    for (family, rest), series in sorted(buckets.items()):
        where = f"{family}{{{dict(rest)}}}" if rest else family
        if "+Inf" in series:
            expected = counts.get((family, rest))
            if expected is None:
                errors.append(f"{where}: no matching _count series")
            elif series["+Inf"] != expected:
                errors.append(f"{where}: le=\"+Inf\" bucket "
                              f"{series['+Inf']} != _count {expected}")

    for name in require:
        if name not in family_values:
            errors.append(f"required family {name} is absent")
    for name in require_nonzero:
        values = [v for _, v in family_values.get(name, [])]
        if not values:
            errors.append(f"required family {name} is absent")
        elif all(v == 0 for v in values):
            errors.append(f"required family {name} has no nonzero "
                          f"sample")

    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this family is present")
    parser.add_argument("--require-nonzero", action="append",
                        default=[], metavar="NAME",
                        help="fail unless this family has a sample "
                             "> 0")
    args = parser.parse_args()

    errors = check(args.path, args.require, args.require_nonzero)
    if errors:
        print(f"FAIL: {args.path}: {len(errors)} problem(s)")
        for err in errors:
            print(f"  {err}")
        return 1
    print(f"OK: {args.path} is well-formed Prometheus exposition")
    return 0


if __name__ == "__main__":
    sys.exit(main())
