/**
 * @file
 * trace_convert: CSV <-> binary trace conversion and inspection.
 *
 * The operational companion to the trace subsystem: production access
 * logs usually arrive as text (one decimal line address per line);
 * replay wants the compact binary format (trace/trace_file.h). Both
 * directions stream, so multi-GB traces convert in constant memory.
 *
 *   trace_convert --to-binary IN.csv OUT.trace
 *   trace_convert --to-csv    IN.trace OUT.csv
 *   trace_convert --record    KIND OUT.trace N [SEED]
 *   trace_convert --info      FILE
 *
 * --record materializes N accesses of a built-in generator
 * (zipf | uniform | scan | flashcrowd | scanstorm | diurnal |
 * tenantchurn) into a binary trace — handy for producing test
 * fixtures and demo inputs without a production log.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace_file.h"
#include "util/log.h"
#include "workload/scenarios.h"
#include "workload/uniform_random.h"
#include "workload/zipf_stream.h"

namespace {

const char* kUsage =
    "usage: trace_convert --to-binary IN.csv OUT.trace\n"
    "       trace_convert --to-csv    IN.trace OUT.csv\n"
    "       trace_convert --record    KIND OUT.trace N [SEED]\n"
    "       trace_convert --info      FILE\n"
    "\n"
    "  --to-binary  convert a CSV trace (one decimal line address\n"
    "               per line) to the compact binary format\n"
    "  --to-csv     convert a binary trace back to canonical CSV\n"
    "  --record     write N accesses of a built-in generator (KIND:\n"
    "               zipf | uniform | scan | flashcrowd | scanstorm |\n"
    "               diurnal | tenantchurn) as a binary trace\n"
    "  --info       validate FILE and print its format and size\n"
    "\n"
    "Both conversions stream: constant memory for any trace size.\n";

std::unique_ptr<talus::AccessStream>
buildGenerator(const std::string& kind, uint64_t seed)
{
    using namespace talus;
    if (kind == "zipf")
        return std::make_unique<ZipfStream>(1 << 14, 0.9, 0, seed);
    if (kind == "uniform")
        return std::make_unique<UniformRandom>(1 << 14, 0, seed);
    if (kind == "scan") {
        ScanStormSpec spec;
        spec.seed = seed;
        spec.calmAccesses = 1; // Essentially all storm.
        spec.scanFraction = 0.99;
        return makeScanStormStream(spec);
    }
    if (kind == "flashcrowd") {
        FlashCrowdSpec spec;
        spec.seed = seed;
        return makeFlashCrowdStream(spec);
    }
    if (kind == "scanstorm") {
        ScanStormSpec spec;
        spec.seed = seed;
        return makeScanStormStream(spec);
    }
    if (kind == "diurnal") {
        DiurnalSpec spec;
        spec.seed = seed;
        return makeDiurnalStream(spec);
    }
    if (kind == "tenantchurn") {
        TenantChurnSpec spec;
        spec.seed = seed;
        return makeTenantChurnStream(spec);
    }
    return nullptr;
}

int
infoCommand(const std::string& path)
{
    using namespace talus;
    const std::string error = validateTraceFile(path);
    if (!error.empty()) {
        std::fprintf(stderr, "trace_convert: %s\n", error.c_str());
        return 1;
    }
    if (isBinaryTraceFile(path)) {
        TraceReader reader(path);
        std::printf("%s: binary trace, %llu records (%llu bytes)\n",
                    path.c_str(),
                    static_cast<unsigned long long>(
                        reader.numRecords()),
                    static_cast<unsigned long long>(
                        kTraceHeaderBytes + 8 * reader.numRecords()));
        return 0;
    }
    // CSV: count records by streaming (validate already parsed it).
    CsvTraceReader reader(path);
    std::vector<Addr> buf(1 << 14);
    uint64_t records = 0, got;
    while ((got = reader.read(buf.data(), buf.size())) > 0)
        records += got;
    std::printf("%s: CSV trace, %llu records\n", path.c_str(),
                static_cast<unsigned long long>(records));
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace talus;
    const std::string mode = argc >= 2 ? argv[1] : "";

    if (mode == "--help" || mode == "-h") {
        std::printf("%s", kUsage);
        return 0;
    }
    if (mode == "--to-binary" && argc == 4) {
        const uint64_t n = convertCsvToBinary(argv[2], argv[3]);
        std::printf("wrote %llu records to %s\n",
                    static_cast<unsigned long long>(n), argv[3]);
        return 0;
    }
    if (mode == "--to-csv" && argc == 4) {
        const uint64_t n = convertBinaryToCsv(argv[2], argv[3]);
        std::printf("wrote %llu records to %s\n",
                    static_cast<unsigned long long>(n), argv[3]);
        return 0;
    }
    if (mode == "--record" && (argc == 5 || argc == 6)) {
        const std::string kind = argv[2];
        char* end = nullptr;
        const uint64_t n = std::strtoull(argv[4], &end, 10);
        if (end == argv[4] || *end != '\0' || n == 0) {
            std::fprintf(stderr,
                         "trace_convert: N must be a positive "
                         "integer, got '%s'\n\n%s",
                         argv[4], kUsage);
            return 1;
        }
        const uint64_t seed =
            argc == 6 ? std::strtoull(argv[5], nullptr, 10) : 1;
        auto stream = buildGenerator(kind, seed);
        if (stream == nullptr) {
            std::fprintf(stderr,
                         "trace_convert: unknown generator '%s'\n\n%s",
                         kind.c_str(), kUsage);
            return 1;
        }
        TraceWriter writer(argv[3]);
        std::vector<Addr> buf(1 << 14);
        for (uint64_t off = 0; off < n;) {
            const uint64_t take =
                std::min<uint64_t>(buf.size(), n - off);
            stream->nextBlock(buf.data(), take);
            writer.append(buf.data(), take);
            off += take;
        }
        writer.close();
        std::printf("recorded %llu %s accesses to %s\n",
                    static_cast<unsigned long long>(n), kind.c_str(),
                    argv[3]);
        return 0;
    }
    if (mode == "--info" && argc == 3)
        return infoCommand(argv[2]);

    std::fprintf(stderr, "%s", kUsage);
    return 1;
}
